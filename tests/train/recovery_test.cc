#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/allocator.h"
#include "train/engine_trainer.h"
#include "train/mlp.h"
#include "train/trainer.h"
#include "util/fault_injector.h"
#include "util/parallel_for.h"
#include "util/thread_pool.h"

namespace angelptm::train {
namespace {

mem::HierarchicalMemoryOptions MemoryOptions(const char* tag) {
  mem::HierarchicalMemoryOptions o;
  o.page_bytes = 64 * 1024;
  o.gpu_capacity_bytes = 8ull << 20;
  o.cpu_capacity_bytes = 64ull << 20;
  o.ssd_capacity_bytes = 64ull << 20;
  o.ssd_path = std::string("/tmp/angelptm_recovery_test_") + tag + "_" +
               std::to_string(::getpid()) + ".bin";
  return o;
}

std::string TempDir(const char* tag) {
  const std::string dir = std::string("/tmp/angelptm_recovery_") + tag + "_" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

const MlpModel& TestModel() {
  static const MlpModel* model = new MlpModel({{16, 64, 64, 4}});
  return *model;
}

TrainerOptions BaseOptions() {
  TrainerOptions options;
  options.adam.learning_rate = 3e-3;
  options.batch_size = 32;
  options.seed = 7;
  return options;
}

/// Fixture for the crash/restart suite: pins the compute pool to a single
/// thread so floating-point reductions are bitwise reproducible across runs
/// (the determinism the resume tests assert), and keeps the fault registry
/// clean around every case.
class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest() : single_thread_pool_(1) {}

  void SetUp() override {
    util::FaultInjector::Instance().Reset();
    util::SetComputePoolOverride(&single_thread_pool_);
  }
  void TearDown() override {
    util::SetComputePoolOverride(nullptr);
    util::FaultInjector::Instance().Reset();
  }

  util::ThreadPool single_thread_pool_;
};

std::vector<std::vector<float>> MasterParams(core::LockFreeUpdater* updater) {
  std::vector<std::vector<float>> layers(updater->num_layers());
  for (int l = 0; l < updater->num_layers(); ++l) {
    EXPECT_TRUE(updater->ReadMasterParams(l, &layers[l]).ok());
  }
  return layers;
}

TEST_F(RecoveryTest, KillAndRestartMatchesUninterruptedRunBitwise) {
  // The headline §3.1 guarantee: a run killed at step 30 and restarted from
  // its checkpoint produces the SAME model as one that never died — not
  // approximately, bitwise. v2 checkpoints carry the full cursor (RNG
  // state incl. the Box-Muller cache, step counter, loss-scaler schedule),
  // so the resumed run regenerates the identical batch stream.
  SyntheticRegression dataset(16, 32, 4, 99);
  const std::string dir = TempDir("bitwise");

  // Uninterrupted reference: 60 steps straight through.
  TrainerOptions options = BaseOptions();
  options.use_loss_scaling = true;  // The scaler schedule must survive too.
  std::vector<std::vector<float>> reference;
  std::vector<double> reference_losses;
  {
    mem::HierarchicalMemory memory(MemoryOptions("ref"));
    core::Allocator allocator(&memory);
    Trainer trainer(&allocator, &TestModel(), options);
    ASSERT_TRUE(trainer.Init().ok());
    auto report = trainer.Train(dataset, 60);
    ASSERT_TRUE(report.ok());
    reference = MasterParams(trainer.updater());
    reference_losses = report->losses;
  }

  // Interrupted run: checkpoint every 10 steps, "crash" (destroy the
  // trainer) after 30, restart a brand-new trainer from disk.
  options.checkpoint_dir = dir;
  options.checkpoint_every_n_steps = 10;
  std::vector<double> second_half_losses;
  {
    mem::HierarchicalMemory memory(MemoryOptions("half1"));
    core::Allocator allocator(&memory);
    Trainer trainer(&allocator, &TestModel(), options);
    ASSERT_TRUE(trainer.Init().ok());
    ASSERT_TRUE(trainer.Train(dataset, 30).ok());
    EXPECT_EQ(trainer.checkpoint_manager()->Snapshot().last_saved_step, 30);
  }  // <- the crash: everything in memory is gone.
  {
    mem::HierarchicalMemory memory(MemoryOptions("half2"));
    core::Allocator allocator(&memory);
    Trainer trainer(&allocator, &TestModel(), options);
    ASSERT_TRUE(trainer.Init().ok());
    auto resumed = trainer.TryResume(&dataset);
    ASSERT_TRUE(resumed.ok()) << resumed.status();
    EXPECT_TRUE(*resumed);
    EXPECT_EQ(trainer.global_step(), 30);
    auto report = trainer.Train(dataset, 30);
    ASSERT_TRUE(report.ok());
    second_half_losses = report->losses;

    const std::vector<std::vector<float>> restarted =
        MasterParams(trainer.updater());
    ASSERT_EQ(restarted.size(), reference.size());
    for (size_t l = 0; l < reference.size(); ++l) {
      EXPECT_EQ(restarted[l], reference[l]) << "layer " << l;
    }
  }
  // The per-step losses line up too: the resumed run really saw the same
  // batches the reference saw for steps 31..60.
  ASSERT_EQ(second_half_losses.size(), 30u);
  for (size_t i = 0; i < 30; ++i) {
    EXPECT_EQ(second_half_losses[i], reference_losses[30 + i]) << "step " << i;
  }
  std::filesystem::remove_all(dir);
}

TEST_F(RecoveryTest, TryResumeIsFreshStartWithoutCheckpoints) {
  mem::HierarchicalMemory memory(MemoryOptions("fresh"));
  core::Allocator allocator(&memory);
  TrainerOptions options = BaseOptions();
  options.checkpoint_dir = TempDir("fresh");
  Trainer trainer(&allocator, &TestModel(), options);
  ASSERT_TRUE(trainer.Init().ok());
  auto resumed = trainer.TryResume();
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_FALSE(*resumed);
  EXPECT_EQ(trainer.global_step(), 0);
  std::filesystem::remove_all(options.checkpoint_dir);
}

TEST_F(RecoveryTest, AutoRecoveryAbsorbsPoisonedUpdater) {
  // §3.1 end to end: a transient SSD failure poisons the lock-free updater
  // mid-run; Train() must tear it down, restore the latest checkpoint into
  // a fresh updater, and finish — no hang, no error, and the recovery is
  // visible in the report's telemetry.
  SyntheticRegression dataset(16, 32, 4, 99);
  TrainerOptions options = BaseOptions();
  options.lock_free = true;
  options.master_device = mem::DeviceKind::kSsd;
  options.drain_deadline_ms = 5000;

  // Fault-free twin: same config, no faults — the quality yardstick.
  double fault_free_loss = 0;
  {
    mem::HierarchicalMemory memory(MemoryOptions("recover_ref"));
    core::Allocator allocator(&memory);
    Trainer reference(&allocator, &TestModel(), options);
    ASSERT_TRUE(reference.Init().ok());
    auto report = reference.Train(dataset, 60);
    ASSERT_TRUE(report.ok());
    fault_free_loss = report->validation_loss;
  }

  mem::HierarchicalMemory memory(MemoryOptions("recover"));
  core::Allocator allocator(&memory);
  options.checkpoint_dir = TempDir("recover");
  options.checkpoint_every_n_steps = 10;
  options.max_recoveries = 2;
  Trainer trainer(&allocator, &TestModel(), options);
  ASSERT_TRUE(trainer.Init().ok());

  // Phase 1: train far enough to have checkpoints on disk.
  ASSERT_TRUE(trainer.Train(dataset, 20).ok());
  ASSERT_GE(trainer.checkpoint_manager()->Snapshot().saves, 1u);

  // Arm through the ANGELPTM_FAULT_SITES grammar (the same spec string an
  // operator would export). max:3 outlasts the SSD tier's 3-attempt retry
  // loop, so exactly one logical master write-back fails for good, then
  // the "device" heals. The faulted window (3 steps) crosses no
  // checkpoint-save boundary, so the only SSD writer is the updating
  // thread — the poison lands there deterministically.
  ASSERT_TRUE(util::FaultInjector::Instance()
                  .ArmFromSpec("ssd.pwrite=always,max:3")
                  .ok());
  auto faulted = trainer.Train(dataset, 3);
  ASSERT_TRUE(faulted.ok()) << faulted.status();
  EXPECT_EQ(faulted->telemetry.recoveries, 1u);
  EXPECT_EQ(trainer.recoveries(), 1u);
  EXPECT_EQ(trainer.global_step(), 23);
  // The post-recovery updater is healthy and fully drained.
  EXPECT_TRUE(trainer.updater()->status().ok());
  EXPECT_EQ(trainer.updater()->Snapshot().pending_grad_batches, 0u);
  // Exactly the requested number of losses: the rewound steps were re-run,
  // not double-counted (no silent gradient loss either way).
  EXPECT_EQ(faulted->losses.size(), 3u);
  ASSERT_TRUE(faulted->telemetry.has_checkpoint_manager);
  EXPECT_GE(faulted->telemetry.checkpoint.loads, 1u);

  // Phase 3: finish to 60 steps on the healed device and compare quality.
  auto report = trainer.Train(dataset, 37);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(trainer.global_step(), 60);
  EXPECT_EQ(report->telemetry.recoveries, 0u);

  // Quality: the recovered run lands in the same band as its fault-free
  // twin — the rewind re-applied the lost steps instead of dropping them.
  EXPECT_TRUE(std::isfinite(report->validation_loss));
  EXPECT_LT(report->validation_loss, fault_free_loss * 5 + 0.1);
  std::filesystem::remove_all(options.checkpoint_dir);
}

TEST_F(RecoveryTest, RecoveryBudgetExhaustionPropagatesLoudly) {
  SyntheticRegression dataset(16, 32, 4, 99);
  mem::HierarchicalMemory memory(MemoryOptions("budget"));
  core::Allocator allocator(&memory);
  TrainerOptions options = BaseOptions();
  options.lock_free = true;
  options.master_device = mem::DeviceKind::kSsd;
  options.drain_deadline_ms = 5000;
  options.checkpoint_dir = TempDir("budget");
  options.checkpoint_every_n_steps = 10;
  options.max_recoveries = 1;
  Trainer trainer(&allocator, &TestModel(), options);
  ASSERT_TRUE(trainer.Init().ok());
  ASSERT_TRUE(trainer.Train(dataset, 10).ok());

  // First poisoning: absorbed (budget 1). As above, the short faulted
  // windows cross no checkpoint-save step, so the updating thread is the
  // only SSD writer in them.
  ASSERT_TRUE(util::FaultInjector::Instance()
                  .ArmFromSpec("ssd.pwrite=always,max:3")
                  .ok());
  ASSERT_TRUE(trainer.Train(dataset, 3).ok());
  EXPECT_EQ(trainer.recoveries(), 1u);

  // Second poisoning: budget exhausted, the error must escape and say why.
  ASSERT_TRUE(util::FaultInjector::Instance()
                  .ArmFromSpec("ssd.pwrite=always,max:3")
                  .ok());
  auto report = trainer.Train(dataset, 3);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsIoError()) << report.status();
  EXPECT_NE(report.status().message().find("recovery budget of 1 exhausted"),
            std::string::npos)
      << report.status();
  std::filesystem::remove_all(options.checkpoint_dir);
}

TEST_F(RecoveryTest, EngineTrainerResumesAndRecovers) {
  // The same contract through the full Engine stack: kill/restart resumes
  // exactly, and a poisoned lock-free updater is absorbed by rebuilding the
  // whole engine from the checkpoint.
  SyntheticRegression dataset(16, 32, 4, 99);
  const MlpModel model({{16, 32, 4}});
  EngineTrainerOptions options;
  options.engine.memory.page_bytes = 16 * 1024;
  options.engine.memory.gpu_capacity_bytes = 16 * 16 * 1024;
  options.engine.memory.cpu_capacity_bytes = 32ull << 20;
  options.engine.adam.learning_rate = 3e-3;
  options.batch_size = 32;
  options.seed = 7;
  options.offload_activations = false;
  options.checkpoint_dir = TempDir("engine");
  options.checkpoint_every_n_steps = 10;

  // Reference: 40 uninterrupted steps.
  std::vector<double> reference_losses;
  {
    EngineTrainerOptions plain = options;
    plain.checkpoint_dir.clear();
    EngineTrainer trainer(&model, plain);
    ASSERT_TRUE(trainer.Init().ok());
    auto report = trainer.Train(dataset, 40);
    ASSERT_TRUE(report.ok());
    reference_losses = report->losses;
  }

  // Kill after 20, restart, finish.
  {
    EngineTrainer trainer(&model, options);
    ASSERT_TRUE(trainer.Init().ok());
    ASSERT_TRUE(trainer.Train(dataset, 20).ok());
  }
  {
    EngineTrainer trainer(&model, options);
    ASSERT_TRUE(trainer.Init().ok());
    auto resumed = trainer.TryResume(&dataset);
    ASSERT_TRUE(resumed.ok()) << resumed.status();
    EXPECT_TRUE(*resumed);
    EXPECT_EQ(trainer.global_step(), 20);
    auto report = trainer.Train(dataset, 20);
    ASSERT_TRUE(report.ok());
    ASSERT_EQ(report->losses.size(), 20u);
    for (size_t i = 0; i < 20; ++i) {
      EXPECT_EQ(report->losses[i], reference_losses[20 + i]) << "step " << i;
    }
  }
  std::filesystem::remove_all(options.checkpoint_dir);
}

}  // namespace
}  // namespace angelptm::train
