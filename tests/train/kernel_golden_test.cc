#include <cmath>
#include <cstdlib>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/adam.h"
#include "train/kernels.h"
#include "train/simd/dispatch.h"
#include "util/parallel_for.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace angelptm::train {
namespace {

/// Runs every kernel against train::reference:: under BOTH dispatch paths
/// (the AVX2 leg skips itself on hosts/builds without AVX2+FMA). The
/// scalar path shares per-element accumulation order with the reference,
/// so most checks are bitwise there; the vectorized path reassociates
/// sums and uses a polynomial exp, so it gets explicit tolerances. Also
/// forces the kernels onto a 4-thread pool regardless of the host's core
/// count, so the parallel code paths (chunk splitting, partial
/// reductions) are exercised deterministically even on single-core CI
/// machines.
class KernelGoldenTest : public ::testing::TestWithParam<simd::IsaPath> {
 protected:
  void SetUp() override {
    if (!simd::Supported(GetParam())) {
      GTEST_SKIP() << simd::IsaPathName(GetParam())
                   << " path unavailable on this host/build";
    }
    force_ = std::make_unique<simd::ScopedForceIsa>(GetParam());
    pool_ = std::make_unique<util::ThreadPool>(4);
    util::SetComputePoolOverride(pool_.get());
  }
  void TearDown() override {
    util::SetComputePoolOverride(nullptr);
    pool_.reset();
    force_.reset();
  }

  bool Vectorized() const { return GetParam() == simd::IsaPath::kAvx2; }

  /// Bitwise on the scalar path (ASSERT_NEAR with tolerance 0 is equality
  /// for non-NaN floats); `avx2_tol` on the vectorized path.
  double Tol(double avx2_tol) const { return Vectorized() ? avx2_tol : 0.0; }

  std::unique_ptr<simd::ScopedForceIsa> force_;
  std::unique_ptr<util::ThreadPool> pool_;
};

INSTANTIATE_TEST_SUITE_P(
    AllIsaPaths, KernelGoldenTest,
    ::testing::Values(simd::IsaPath::kScalar, simd::IsaPath::kAvx2),
    [](const ::testing::TestParamInfo<simd::IsaPath>& info) {
      return simd::IsaPathName(info.param);
    });

std::vector<float> RandomVector(util::Rng* rng, size_t n,
                                double stddev = 1.0) {
  std::vector<float> v(n);
  rng->FillGaussian(&v, stddev);
  return v;
}

// Odd shapes: nothing divides the scalar tile sizes (64/256), the AVX2
// micro-tile (6x16), the macro tiles (120/256/512), or typical grains —
// so every edge/tail path in both implementations runs — plus the
// degenerate m=1 / n=1 / k=1 edges.
struct Shape {
  size_t m, k, n;
};
const Shape kShapes[] = {
    {1, 1, 1},    {1, 5, 3},      {3, 1, 7},      {7, 3, 1},
    {65, 67, 63}, {129, 70, 257}, {33, 257, 31},  {121, 258, 513},
};

TEST_P(KernelGoldenTest, GemmMatchesReference) {
  util::Rng rng(11);
  for (const Shape& s : kShapes) {
    const auto a = RandomVector(&rng, s.m * s.k);
    const auto b = RandomVector(&rng, s.k * s.n);
    std::vector<float> got(s.m * s.n), want(s.m * s.n);
    Gemm(a.data(), b.data(), got.data(), s.m, s.k, s.n);
    reference::Gemm(a.data(), b.data(), want.data(), s.m, s.k, s.n);
    for (size_t i = 0; i < got.size(); ++i) {
      // Scalar: identical per-element accumulation order, bitwise equal.
      // AVX2: FMA and panel-ordered accumulation reassociate the sum.
      ASSERT_NEAR(got[i], want[i], Tol(1e-3 * (1.0 + std::abs(want[i]))))
          << "shape " << s.m << "x" << s.k << "x" << s.n << " at " << i;
    }
  }
}

TEST_P(KernelGoldenTest, GemmTransAMatchesReference) {
  util::Rng rng(12);
  for (const Shape& s : kShapes) {
    const auto a = RandomVector(&rng, s.k * s.m);
    const auto b = RandomVector(&rng, s.k * s.n);
    std::vector<float> got(s.m * s.n), want(s.m * s.n);
    GemmTransA(a.data(), b.data(), got.data(), s.m, s.k, s.n);
    reference::GemmTransA(a.data(), b.data(), want.data(), s.m, s.k, s.n);
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_NEAR(got[i], want[i], Tol(1e-3 * (1.0 + std::abs(want[i]))))
          << "shape " << s.m << "x" << s.k << "x" << s.n << " at " << i;
    }
  }
}

TEST_P(KernelGoldenTest, GemmTransBMatchesReference) {
  util::Rng rng(13);
  for (const Shape& s : kShapes) {
    const auto a = RandomVector(&rng, s.m * s.k);
    const auto b = RandomVector(&rng, s.n * s.k);
    std::vector<float> got(s.m * s.n), want(s.m * s.n);
    GemmTransB(a.data(), b.data(), got.data(), s.m, s.k, s.n);
    reference::GemmTransB(a.data(), b.data(), want.data(), s.m, s.k, s.n);
    for (size_t i = 0; i < got.size(); ++i) {
      // The reference accumulates in double, so even the scalar blocked
      // kernel (four float-pair double accumulators) is only
      // reassociation-close, not bitwise.
      const double tol = Vectorized()
                             ? 1e-3 * (1.0 + std::abs(want[i]))
                             : 1e-4;
      ASSERT_NEAR(got[i], want[i], tol)
          << "shape " << s.m << "x" << s.k << "x" << s.n << " at " << i;
    }
  }
}

TEST_P(KernelGoldenTest, AddBiasGeluMatchesUnfused) {
  util::Rng rng(14);
  for (const size_t m : {1u, 3u, 65u}) {
    for (const size_t n : {1u, 7u, 129u}) {
      const auto z0 = RandomVector(&rng, m * n);
      const auto bias = RandomVector(&rng, n);
      // Unfused path: AddBias then Gelu on a copy.
      std::vector<float> z_ref = z0;
      for (size_t i = 0; i < m; ++i) {
        for (size_t j = 0; j < n; ++j) z_ref[i * n + j] += bias[j];
      }
      std::vector<float> y_ref(m * n);
      reference::Gelu(z_ref.data(), y_ref.data(), m * n);

      std::vector<float> z = z0, y(m * n);
      AddBiasGelu(z.data(), bias.data(), y.data(), m, n);
      for (size_t i = 0; i < m * n; ++i) {
        // The bias add is a single IEEE addition on both paths: bitwise.
        ASSERT_EQ(z[i], z_ref[i]) << "pre-activation at " << i;
        // AVX2 GeLU uses a vectorized exp polynomial vs. the reference's
        // double tanh.
        ASSERT_NEAR(y[i], y_ref[i], Tol(1e-5)) << "activation at " << i;
      }
    }
  }
}

TEST_P(KernelGoldenTest, GeluRoundTripMatchesReference) {
  util::Rng rng(21);
  const size_t n = 4099;  // Not a multiple of any vector width or grain.
  const auto x = RandomVector(&rng, n, 2.0);
  std::vector<float> y(n), y_ref(n);
  Gelu(x.data(), y.data(), n);
  reference::Gelu(x.data(), y_ref.data(), n);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_NEAR(y[i], y_ref[i], Tol(1e-5)) << "gelu at " << i;
  }

  // Backward against a double-precision scalar recomputation.
  const auto dy = RandomVector(&rng, n);
  std::vector<float> dx(n);
  GeluBackward(x.data(), dy.data(), dx.data(), n);
  constexpr double kC = 0.7978845608028654;
  for (size_t i = 0; i < n; ++i) {
    const double v = x[i];
    const double u = kC * (v + 0.044715 * v * v * v);
    const double t = std::tanh(u);
    const double du = kC * (1.0 + 3.0 * 0.044715 * v * v);
    const double want = dy[i] * (0.5 * (1.0 + t) + 0.5 * v * (1.0 - t * t) * du);
    ASSERT_NEAR(dx[i], want, 1e-5 * (1.0 + std::abs(want)))
        << "gelu grad at " << i;
  }
}

TEST_P(KernelGoldenTest, AddBiasGeluBackwardMatchesUnfused) {
  util::Rng rng(15);
  const size_t m = 65, n = 33;
  const auto z = RandomVector(&rng, m * n);
  const auto dy = RandomVector(&rng, m * n);
  std::vector<float> dz_ref(m * n), dbias_ref(n, 0.0f);
  GeluBackward(z.data(), dy.data(), dz_ref.data(), m * n);
  BiasBackward(dz_ref.data(), dbias_ref.data(), m, n);

  std::vector<float> dz(m * n), dbias(n, 123.0f);  // Poisoned: must be
                                                   // zeroed internally.
  AddBiasGeluBackward(z.data(), dy.data(), dz.data(), dbias.data(), m, n);
  // dz is elementwise, and the fused and unfused kernels use the same
  // per-lane math on each path: bitwise on both.
  for (size_t i = 0; i < m * n; ++i) ASSERT_EQ(dz[i], dz_ref[i]) << i;
  for (size_t j = 0; j < n; ++j) ASSERT_NEAR(dbias[j], dbias_ref[j], 1e-4);
}

TEST_P(KernelGoldenTest, LayerNormMatchesReference) {
  util::Rng rng(16);
  for (const size_t m : {1u, 2u, 67u}) {
    for (const size_t n : {1u, 31u, 257u}) {
      const auto x = RandomVector(&rng, m * n, 2.0);
      const auto gamma = RandomVector(&rng, n);
      const auto beta = RandomVector(&rng, n);
      std::vector<float> y(m * n), mean(m), rstd(m);
      std::vector<float> y_ref(m * n), mean_ref(m), rstd_ref(m);
      LayerNorm(x.data(), gamma.data(), beta.data(), y.data(), mean.data(),
                rstd.data(), m, n);
      reference::LayerNorm(x.data(), gamma.data(), beta.data(), y_ref.data(),
                           mean_ref.data(), rstd_ref.data(), m, n);
      for (size_t i = 0; i < m; ++i) {
        // AVX2 accumulates row sums in float lanes before the double
        // horizontal reduction; the reference sums in double throughout.
        ASSERT_NEAR(mean[i], mean_ref[i], Tol(1e-4)) << "mean at " << i;
        ASSERT_NEAR(rstd[i], rstd_ref[i], Tol(1e-4)) << "rstd at " << i;
      }
      for (size_t i = 0; i < m * n; ++i) {
        ASSERT_NEAR(y[i], y_ref[i], Tol(5e-4)) << "y at " << i;
      }
    }
  }
}

TEST_P(KernelGoldenTest, LayerNormBackwardMatchesReference) {
  util::Rng rng(17);
  for (const size_t m : {1u, 5u, 67u}) {
    for (const size_t n : {1u, 31u, 129u}) {
      const auto x = RandomVector(&rng, m * n);
      auto gamma = RandomVector(&rng, n, 0.3);
      for (auto& g : gamma) g += 1.0f;
      const auto beta = RandomVector(&rng, n, 0.1);
      const auto dy = RandomVector(&rng, m * n);
      std::vector<float> y(m * n), mean(m), rstd(m);
      reference::LayerNorm(x.data(), gamma.data(), beta.data(), y.data(),
                           mean.data(), rstd.data(), m, n);

      std::vector<float> dx(m * n), dgamma(n, 55.0f), dbeta(n, -9.0f);
      std::vector<float> dx_ref(m * n), dgamma_ref(n), dbeta_ref(n);
      // Poisoned dgamma/dbeta: the kernel must zero them internally.
      LayerNormBackward(x.data(), gamma.data(), dy.data(), mean.data(),
                        rstd.data(), dx.data(), dgamma.data(), dbeta.data(),
                        m, n);
      reference::LayerNormBackward(x.data(), gamma.data(), dy.data(),
                                   mean.data(), rstd.data(), dx_ref.data(),
                                   dgamma_ref.data(), dbeta_ref.data(), m, n);
      for (size_t i = 0; i < m * n; ++i) {
        ASSERT_NEAR(dx[i], dx_ref[i], Tol(1e-3)) << "dx at " << i;
      }
      // dgamma/dbeta go through per-chunk partials: reassociation only.
      for (size_t j = 0; j < n; ++j) {
        ASSERT_NEAR(dgamma[j], dgamma_ref[j], 1e-3 * (1.0 + m)) << j;
        ASSERT_NEAR(dbeta[j], dbeta_ref[j], 1e-3 * (1.0 + m)) << j;
      }
    }
  }
}

TEST_P(KernelGoldenTest, SoftmaxCrossEntropyMatchesReference) {
  util::Rng rng(18);
  for (const size_t m : {1u, 3u, 65u}) {
    for (const size_t n : {2u, 17u, 129u}) {
      const auto logits = RandomVector(&rng, m * n, 2.0);
      std::vector<int> labels(m);
      for (size_t i = 0; i < m; ++i) labels[i] = int(i % n);
      std::vector<float> grad(m * n), grad_ref(m * n);
      const double loss = SoftmaxCrossEntropy(logits.data(), labels.data(),
                                              grad.data(), m, n);
      const double loss_ref = reference::SoftmaxCrossEntropy(
          logits.data(), labels.data(), grad_ref.data(), m, n);
      const double loss_tol = Vectorized() ? 1e-5 : 1e-9;
      EXPECT_NEAR(loss, loss_ref, loss_tol * (1.0 + std::abs(loss_ref)));
      for (size_t i = 0; i < m * n; ++i) {
        ASSERT_NEAR(grad[i], grad_ref[i], Tol(1e-5)) << "grad at " << i;
      }
    }
  }
}

/// The PR-4 guarantee that must survive vectorization: the optimizer step
/// is bitwise identical across thread counts on EVERY dispatch path. The
/// AVX2 kernel earns this by aligning its vector loop to absolute
/// 8-element blocks and mirroring the vector math op-for-op in the
/// head/tail scalars; the scalar path earns it by being elementwise in a
/// fixed order.
TEST_P(KernelGoldenTest, AdamUpdateBitwiseStableAcrossThreadCounts) {
  util::Rng rng(19);
  core::AdamConfig config;
  config.weight_decay = 0.01;
  const size_t count = 65537;  // Not a multiple of the Adam grain (or 8).
  const auto grads = RandomVector(&rng, count);
  const auto p0 = RandomVector(&rng, count);
  const std::vector<float> m0(count, 0.1f), v0(count, 0.2f);

  std::vector<float> p_base, m_base, v_base;
  for (const int threads : {1, 4, 8}) {
    std::vector<float> p = p0, m = m0, v = v0;
    {
      util::ThreadPool pool(threads);
      util::SetComputePoolOverride(&pool);
      core::AdamUpdate(config, p.data(), m.data(), v.data(), grads.data(),
                       count, 3);
      util::SetComputePoolOverride(nullptr);
    }
    if (p_base.empty()) {
      p_base = std::move(p);
      m_base = std::move(m);
      v_base = std::move(v);
      continue;
    }
    for (size_t i = 0; i < count; ++i) {
      ASSERT_EQ(p[i], p_base[i]) << threads << " threads: param at " << i;
      ASSERT_EQ(m[i], m_base[i]) << threads << " threads: m at " << i;
      ASSERT_EQ(v[i], v_base[i]) << threads << " threads: v at " << i;
    }
  }
  util::SetComputePoolOverride(pool_.get());
}

/// The AVX2 Adam kernel is float math, so it deviates from the scalar
/// double-precision path — but only by float rounding, not by drift.
TEST(KernelCrossPathTest, AdamScalarAndAvx2Agree) {
  if (!simd::Supported(simd::IsaPath::kAvx2)) {
    GTEST_SKIP() << "AVX2+FMA unavailable on this host/build";
  }
  util::Rng rng(20);
  core::AdamConfig config;
  config.weight_decay = 0.01;
  const size_t count = 10007;
  const auto grads = RandomVector(&rng, count);
  const auto p0 = RandomVector(&rng, count);
  const std::vector<float> m0(count, 0.1f), v0(count, 0.2f);

  std::vector<float> p_s = p0, m_s = m0, v_s = v0;
  {
    simd::ScopedForceIsa force(simd::IsaPath::kScalar);
    core::AdamUpdate(config, p_s.data(), m_s.data(), v_s.data(), grads.data(),
                     count, 3);
  }
  std::vector<float> p_a = p0, m_a = m0, v_a = v0;
  {
    simd::ScopedForceIsa force(simd::IsaPath::kAvx2);
    core::AdamUpdate(config, p_a.data(), m_a.data(), v_a.data(), grads.data(),
                     count, 3);
  }
  for (size_t i = 0; i < count; ++i) {
    ASSERT_NEAR(p_a[i], p_s[i], 1e-5 * (1.0 + std::abs(p_s[i]))) << i;
    ASSERT_NEAR(m_a[i], m_s[i], 1e-6) << i;
    ASSERT_NEAR(v_a[i], v_s[i], 1e-6) << i;
  }
}

}  // namespace
}  // namespace angelptm::train
