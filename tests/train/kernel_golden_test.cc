#include <cmath>
#include <cstdlib>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/adam.h"
#include "train/kernels.h"
#include "util/parallel_for.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace angelptm::train {
namespace {

/// Forces the kernels onto a 4-thread pool regardless of the host's core
/// count, so the parallel code paths (chunk splitting, partial reductions)
/// are exercised deterministically even on single-core CI machines.
class KernelGoldenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pool_ = std::make_unique<util::ThreadPool>(4);
    util::SetComputePoolOverride(pool_.get());
  }
  void TearDown() override {
    util::SetComputePoolOverride(nullptr);
    pool_.reset();
  }
  std::unique_ptr<util::ThreadPool> pool_;
};

std::vector<float> RandomVector(util::Rng* rng, size_t n,
                                double stddev = 1.0) {
  std::vector<float> v(n);
  rng->FillGaussian(&v, stddev);
  return v;
}

// Odd shapes: nothing divides the tile sizes (64/256) or typical grains,
// plus the degenerate m=1 / n=1 / k=1 edges.
struct Shape {
  size_t m, k, n;
};
const Shape kShapes[] = {
    {1, 1, 1},    {1, 5, 3},      {3, 1, 7},      {7, 3, 1},
    {65, 67, 63}, {129, 70, 257}, {33, 257, 31},
};

TEST_F(KernelGoldenTest, GemmMatchesReference) {
  util::Rng rng(11);
  for (const Shape& s : kShapes) {
    const auto a = RandomVector(&rng, s.m * s.k);
    const auto b = RandomVector(&rng, s.k * s.n);
    std::vector<float> got(s.m * s.n), want(s.m * s.n);
    Gemm(a.data(), b.data(), got.data(), s.m, s.k, s.n);
    reference::Gemm(a.data(), b.data(), want.data(), s.m, s.k, s.n);
    for (size_t i = 0; i < got.size(); ++i) {
      // Identical per-element accumulation order: bitwise equal.
      ASSERT_EQ(got[i], want[i])
          << "shape " << s.m << "x" << s.k << "x" << s.n << " at " << i;
    }
  }
}

TEST_F(KernelGoldenTest, GemmTransAMatchesReference) {
  util::Rng rng(12);
  for (const Shape& s : kShapes) {
    const auto a = RandomVector(&rng, s.k * s.m);
    const auto b = RandomVector(&rng, s.k * s.n);
    std::vector<float> got(s.m * s.n), want(s.m * s.n);
    GemmTransA(a.data(), b.data(), got.data(), s.m, s.k, s.n);
    reference::GemmTransA(a.data(), b.data(), want.data(), s.m, s.k, s.n);
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], want[i])
          << "shape " << s.m << "x" << s.k << "x" << s.n << " at " << i;
    }
  }
}

TEST_F(KernelGoldenTest, GemmTransBMatchesReference) {
  util::Rng rng(13);
  for (const Shape& s : kShapes) {
    const auto a = RandomVector(&rng, s.m * s.k);
    const auto b = RandomVector(&rng, s.n * s.k);
    std::vector<float> got(s.m * s.n), want(s.m * s.n);
    GemmTransB(a.data(), b.data(), got.data(), s.m, s.k, s.n);
    reference::GemmTransB(a.data(), b.data(), want.data(), s.m, s.k, s.n);
    for (size_t i = 0; i < got.size(); ++i) {
      // The blocked kernel uses four dot-product accumulators, so only
      // float-sum reassociation separates it from the reference.
      ASSERT_NEAR(got[i], want[i], 1e-4)
          << "shape " << s.m << "x" << s.k << "x" << s.n << " at " << i;
    }
  }
}

TEST_F(KernelGoldenTest, AddBiasGeluMatchesUnfused) {
  util::Rng rng(14);
  for (const size_t m : {1u, 3u, 65u}) {
    for (const size_t n : {1u, 7u, 129u}) {
      const auto z0 = RandomVector(&rng, m * n);
      const auto bias = RandomVector(&rng, n);
      // Unfused path: AddBias then Gelu on a copy.
      std::vector<float> z_ref = z0;
      for (size_t i = 0; i < m; ++i) {
        for (size_t j = 0; j < n; ++j) z_ref[i * n + j] += bias[j];
      }
      std::vector<float> y_ref(m * n);
      reference::Gelu(z_ref.data(), y_ref.data(), m * n);

      std::vector<float> z = z0, y(m * n);
      AddBiasGelu(z.data(), bias.data(), y.data(), m, n);
      for (size_t i = 0; i < m * n; ++i) {
        ASSERT_EQ(z[i], z_ref[i]) << "pre-activation at " << i;
        ASSERT_EQ(y[i], y_ref[i]) << "activation at " << i;
      }
    }
  }
}

TEST_F(KernelGoldenTest, AddBiasGeluBackwardMatchesUnfused) {
  util::Rng rng(15);
  const size_t m = 65, n = 33;
  const auto z = RandomVector(&rng, m * n);
  const auto dy = RandomVector(&rng, m * n);
  std::vector<float> dz_ref(m * n), dbias_ref(n, 0.0f);
  GeluBackward(z.data(), dy.data(), dz_ref.data(), m * n);
  BiasBackward(dz_ref.data(), dbias_ref.data(), m, n);

  std::vector<float> dz(m * n), dbias(n, 123.0f);  // Poisoned: must be
                                                   // zeroed internally.
  AddBiasGeluBackward(z.data(), dy.data(), dz.data(), dbias.data(), m, n);
  for (size_t i = 0; i < m * n; ++i) ASSERT_EQ(dz[i], dz_ref[i]);
  for (size_t j = 0; j < n; ++j) ASSERT_NEAR(dbias[j], dbias_ref[j], 1e-4);
}

TEST_F(KernelGoldenTest, LayerNormMatchesReference) {
  util::Rng rng(16);
  for (const size_t m : {1u, 2u, 67u}) {
    for (const size_t n : {1u, 31u, 257u}) {
      const auto x = RandomVector(&rng, m * n, 2.0);
      const auto gamma = RandomVector(&rng, n);
      const auto beta = RandomVector(&rng, n);
      std::vector<float> y(m * n), mean(m), rstd(m);
      std::vector<float> y_ref(m * n), mean_ref(m), rstd_ref(m);
      LayerNorm(x.data(), gamma.data(), beta.data(), y.data(), mean.data(),
                rstd.data(), m, n);
      reference::LayerNorm(x.data(), gamma.data(), beta.data(), y_ref.data(),
                           mean_ref.data(), rstd_ref.data(), m, n);
      for (size_t i = 0; i < m; ++i) {
        ASSERT_EQ(mean[i], mean_ref[i]);
        ASSERT_EQ(rstd[i], rstd_ref[i]);
      }
      for (size_t i = 0; i < m * n; ++i) ASSERT_EQ(y[i], y_ref[i]);
    }
  }
}

TEST_F(KernelGoldenTest, LayerNormBackwardMatchesReference) {
  util::Rng rng(17);
  for (const size_t m : {1u, 5u, 67u}) {
    for (const size_t n : {1u, 31u, 129u}) {
      const auto x = RandomVector(&rng, m * n);
      auto gamma = RandomVector(&rng, n, 0.3);
      for (auto& g : gamma) g += 1.0f;
      const auto beta = RandomVector(&rng, n, 0.1);
      const auto dy = RandomVector(&rng, m * n);
      std::vector<float> y(m * n), mean(m), rstd(m);
      reference::LayerNorm(x.data(), gamma.data(), beta.data(), y.data(),
                           mean.data(), rstd.data(), m, n);

      std::vector<float> dx(m * n), dgamma(n, 55.0f), dbeta(n, -9.0f);
      std::vector<float> dx_ref(m * n), dgamma_ref(n), dbeta_ref(n);
      // Poisoned dgamma/dbeta: the kernel must zero them internally.
      LayerNormBackward(x.data(), gamma.data(), dy.data(), mean.data(),
                        rstd.data(), dx.data(), dgamma.data(), dbeta.data(),
                        m, n);
      reference::LayerNormBackward(x.data(), gamma.data(), dy.data(),
                                   mean.data(), rstd.data(), dx_ref.data(),
                                   dgamma_ref.data(), dbeta_ref.data(), m, n);
      for (size_t i = 0; i < m * n; ++i) {
        ASSERT_EQ(dx[i], dx_ref[i]) << "dx at " << i;
      }
      // dgamma/dbeta go through per-chunk partials: reassociation only.
      for (size_t j = 0; j < n; ++j) {
        ASSERT_NEAR(dgamma[j], dgamma_ref[j], 1e-3 * (1.0 + m)) << j;
        ASSERT_NEAR(dbeta[j], dbeta_ref[j], 1e-3 * (1.0 + m)) << j;
      }
    }
  }
}

TEST_F(KernelGoldenTest, SoftmaxCrossEntropyMatchesReference) {
  util::Rng rng(18);
  for (const size_t m : {1u, 3u, 65u}) {
    for (const size_t n : {2u, 17u, 129u}) {
      const auto logits = RandomVector(&rng, m * n, 2.0);
      std::vector<int> labels(m);
      for (size_t i = 0; i < m; ++i) labels[i] = int(i % n);
      std::vector<float> grad(m * n), grad_ref(m * n);
      const double loss = SoftmaxCrossEntropy(logits.data(), labels.data(),
                                              grad.data(), m, n);
      const double loss_ref = reference::SoftmaxCrossEntropy(
          logits.data(), labels.data(), grad_ref.data(), m, n);
      EXPECT_NEAR(loss, loss_ref, 1e-9 * (1.0 + std::abs(loss_ref)));
      for (size_t i = 0; i < m * n; ++i) {
        ASSERT_EQ(grad[i], grad_ref[i]) << "grad at " << i;
      }
    }
  }
}

TEST_F(KernelGoldenTest, AdamUpdateBitwiseStableAcrossThreadCounts) {
  util::Rng rng(19);
  core::AdamConfig config;
  config.weight_decay = 0.01;
  const size_t count = 65537;  // Not a multiple of the Adam grain.
  const auto grads = RandomVector(&rng, count);
  std::vector<float> p1 = RandomVector(&rng, count), m1(count, 0.1f),
                     v1(count, 0.2f);
  std::vector<float> p2 = p1, m2 = m1, v2 = v1;

  // Multi-threaded (the fixture's 4-thread override pool).
  core::AdamUpdate(config, p1.data(), m1.data(), v1.data(), grads.data(),
                   count, 3);
  // Single-threaded: no pool at all.
  util::SetComputePoolOverride(nullptr);
  {
    util::ThreadPool serial(1);
    util::SetComputePoolOverride(&serial);
    core::AdamUpdate(config, p2.data(), m2.data(), v2.data(), grads.data(),
                     count, 3);
    util::SetComputePoolOverride(nullptr);
  }
  util::SetComputePoolOverride(pool_.get());

  for (size_t i = 0; i < count; ++i) {
    ASSERT_EQ(p1[i], p2[i]) << "param at " << i;
    ASSERT_EQ(m1[i], m2[i]) << "m at " << i;
    ASSERT_EQ(v1[i], v2[i]) << "v at " << i;
  }
}

}  // namespace
}  // namespace angelptm::train
