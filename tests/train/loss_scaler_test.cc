#include "train/loss_scaler.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/allocator.h"
#include "train/dataset.h"
#include "train/mlp.h"
#include "train/trainer.h"

namespace angelptm::train {
namespace {

TEST(LossScalerTest, StartsAtInitialScale) {
  LossScaler scaler;
  EXPECT_DOUBLE_EQ(scaler.scale(), 65536.0);
}

TEST(LossScalerTest, OverflowBacksOffAndSkips) {
  LossScaler scaler;
  EXPECT_FALSE(scaler.Update(/*overflowed=*/true));
  EXPECT_DOUBLE_EQ(scaler.scale(), 32768.0);
  EXPECT_EQ(scaler.overflows(), 1u);
  EXPECT_FALSE(scaler.Update(true));
  EXPECT_DOUBLE_EQ(scaler.scale(), 16384.0);
}

TEST(LossScalerTest, GrowsAfterInterval) {
  LossScaler::Options options;
  options.initial_scale = 8.0;
  options.growth_interval = 3;
  LossScaler scaler(options);
  EXPECT_TRUE(scaler.Update(false));
  EXPECT_TRUE(scaler.Update(false));
  EXPECT_DOUBLE_EQ(scaler.scale(), 8.0);  // Not yet.
  EXPECT_TRUE(scaler.Update(false));
  EXPECT_DOUBLE_EQ(scaler.scale(), 16.0);
  EXPECT_EQ(scaler.growths(), 1u);
}

TEST(LossScalerTest, OverflowResetsGrowthCounter) {
  LossScaler::Options options;
  options.initial_scale = 8.0;
  options.growth_interval = 2;
  LossScaler scaler(options);
  EXPECT_TRUE(scaler.Update(false));
  EXPECT_FALSE(scaler.Update(true));  // Back to 4, counter reset.
  EXPECT_TRUE(scaler.Update(false));
  EXPECT_DOUBLE_EQ(scaler.scale(), 4.0);  // One good step only.
  EXPECT_TRUE(scaler.Update(false));
  EXPECT_DOUBLE_EQ(scaler.scale(), 8.0);
}

TEST(LossScalerTest, RespectsBounds) {
  LossScaler::Options options;
  options.initial_scale = 2.0;
  options.min_scale = 1.0;
  options.max_scale = 4.0;
  options.growth_interval = 1;
  LossScaler scaler(options);
  scaler.Update(true);
  scaler.Update(true);
  scaler.Update(true);
  EXPECT_DOUBLE_EQ(scaler.scale(), 1.0);  // Floor.
  for (int i = 0; i < 10; ++i) scaler.Update(false);
  EXPECT_DOUBLE_EQ(scaler.scale(), 4.0);  // Ceiling.
}

TEST(LossScalerTest, DetectsNonFinite) {
  EXPECT_FALSE(LossScaler::HasNonFinite({1.0f, -2.0f, 0.0f}));
  EXPECT_TRUE(LossScaler::HasNonFinite(
      {1.0f, std::numeric_limits<float>::infinity()}));
  EXPECT_TRUE(LossScaler::HasNonFinite({std::nanf("")}));
}

TEST(LossScalerTest, TrainerWithScalingStillConverges) {
  mem::HierarchicalMemoryOptions memory_options;
  memory_options.page_bytes = 16 * 1024;
  memory_options.gpu_capacity_bytes = 4ull << 20;
  memory_options.cpu_capacity_bytes = 32ull << 20;
  mem::HierarchicalMemory memory(memory_options);
  core::Allocator allocator(&memory);

  const MlpModel model({{16, 64, 4}});
  TrainerOptions options;
  options.adam.learning_rate = 3e-3;
  options.batch_size = 32;
  options.use_loss_scaling = true;
  options.loss_scaler.initial_scale = 1024.0;
  options.seed = 7;
  Trainer trainer(&allocator, &model, options);
  ASSERT_TRUE(trainer.Init().ok());
  SyntheticRegression dataset(16, 32, 4, 99);
  auto report = trainer.Train(dataset, 200);
  ASSERT_TRUE(report.ok());
  // Scaled/unscaled training matches unscaled quality: grads are exact
  // multiples here, so convergence must be unaffected.
  EXPECT_LT(report->final_train_loss, report->losses.front() / 5);
  EXPECT_EQ(report->overflow_steps_skipped, 0u);
  EXPECT_DOUBLE_EQ(report->final_loss_scale, 2048.0);  // Grew once at 200.
}

TEST(LossScalerTest, TrainerSkipsOverflowedSteps) {
  // A pathological scale guarantees inf gradients: every step must be
  // skipped, parameters unchanged, and the scale must decay.
  mem::HierarchicalMemoryOptions memory_options;
  memory_options.page_bytes = 16 * 1024;
  memory_options.gpu_capacity_bytes = 4ull << 20;
  memory_options.cpu_capacity_bytes = 32ull << 20;
  mem::HierarchicalMemory memory(memory_options);
  core::Allocator allocator(&memory);

  const MlpModel model({{16, 64, 4}});
  TrainerOptions options;
  options.adam.learning_rate = 3e-3;
  options.batch_size = 32;
  options.use_loss_scaling = true;
  // Large enough that even after ten 0.5x backoffs the scaled gradients
  // still exceed float max (~3.4e38), so every step overflows.
  options.loss_scaler.initial_scale = 3e42;
  options.loss_scaler.min_scale = 1.0;
  options.seed = 7;
  Trainer trainer(&allocator, &model, options);
  ASSERT_TRUE(trainer.Init().ok());
  std::vector<float> before;
  ASSERT_TRUE(trainer.updater()->ReadMasterParams(0, &before).ok());
  SyntheticRegression dataset(16, 32, 4, 99);
  auto report = trainer.Train(dataset, 10);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->overflow_steps_skipped, 10u);
  EXPECT_EQ(report->telemetry.updater.updates_applied, 0u);
  std::vector<float> after;
  ASSERT_TRUE(trainer.updater()->ReadMasterParams(0, &after).ok());
  EXPECT_EQ(before, after);
  EXPECT_LT(report->final_loss_scale, 3e42);
}

}  // namespace
}  // namespace angelptm::train
