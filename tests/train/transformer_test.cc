#include "train/transformer.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/adam.h"
#include "train/kernels.h"
#include "util/random.h"

namespace angelptm::train {
namespace {

TransformerConfig TinyConfig() {
  TransformerConfig config;
  config.seq_len = 4;
  config.d_model = 8;
  config.num_heads = 2;
  config.d_ffn = 16;
  config.num_blocks = 2;
  config.out_dim = 2;
  return config;
}

TEST(TransformerTest, ParamCounts) {
  TinyTransformer model(TinyConfig());
  EXPECT_EQ(model.num_layers(), 3);  // 2 blocks + head.
  // Block: 4d^2 + 2 d f + f + 5d  with d=8, f=16.
  EXPECT_EQ(model.LayerParamCount(0), 4u * 64 + 2 * 8 * 16 + 16 + 5 * 8);
  EXPECT_EQ(model.LayerParamCount(1), model.LayerParamCount(0));
  EXPECT_EQ(model.LayerParamCount(2), 8u * 2 + 2);  // Head.
  EXPECT_EQ(model.InputSize(), 4u * 8);
  EXPECT_EQ(model.OutputSize(), 2u);
}

TEST(TransformerTest, ForwardShapesAndFiniteness) {
  TinyTransformer model(TinyConfig());
  util::Rng rng(1);
  const size_t batch = 3;
  std::vector<float> x(batch * model.InputSize());
  rng.FillGaussian(&x, 1.0);
  std::vector<float> acts = x;
  for (int l = 0; l < model.num_layers(); ++l) {
    const auto params = model.InitLayerParams(l, &rng);
    std::vector<float> next;
    model.Forward(l, params.data(), acts, batch, &next, nullptr);
    acts = std::move(next);
    for (float v : acts) ASSERT_TRUE(std::isfinite(v));
  }
  EXPECT_EQ(acts.size(), batch * model.OutputSize());
}

TEST(TransformerTest, CausalMaskBlocksFutureTokens) {
  // Changing the input at position j must not change block outputs at
  // positions i < j.
  TinyTransformer model(TinyConfig());
  util::Rng rng(2);
  const auto params = model.InitLayerParams(0, &rng);
  const size_t batch = 1, s = 4, d = 8;
  std::vector<float> x(batch * s * d);
  rng.FillGaussian(&x, 1.0);
  std::vector<float> base;
  model.Forward(0, params.data(), x, batch, &base, nullptr);

  std::vector<float> perturbed = x;
  for (size_t c = 0; c < d; ++c) perturbed[2 * d + c] += 1.0f;  // Token 2.
  std::vector<float> out;
  model.Forward(0, params.data(), perturbed, batch, &out, nullptr);
  for (size_t i = 0; i < 2; ++i) {  // Tokens 0 and 1 unaffected.
    for (size_t c = 0; c < d; ++c) {
      EXPECT_FLOAT_EQ(out[i * d + c], base[i * d + c])
          << "token " << i << " dim " << c;
    }
  }
  // Token 2 itself (and later) must change.
  bool changed = false;
  for (size_t c = 0; c < d; ++c) {
    if (out[2 * d + c] != base[2 * d + c]) changed = true;
  }
  EXPECT_TRUE(changed);
}

TEST(TransformerTest, AttentionProbsAreCausalRowStochastic) {
  TinyTransformer model(TinyConfig());
  util::Rng rng(3);
  const auto params = model.InitLayerParams(0, &rng);
  const size_t batch = 2, s = 4, d = 8;
  std::vector<float> x(batch * s * d);
  rng.FillGaussian(&x, 1.0);
  LayerStash stash;
  std::vector<float> out;
  model.Forward(0, params.data(), x, batch, &out, &stash);
  const auto& probs = stash.saved[6];  // kProbs.
  const size_t heads = 2;
  ASSERT_EQ(probs.size(), batch * heads * s * s);
  for (size_t bh = 0; bh < batch * heads; ++bh) {
    const float* p = probs.data() + bh * s * s;
    for (size_t i = 0; i < s; ++i) {
      double row_sum = 0;
      for (size_t j = 0; j < s; ++j) {
        if (j > i) {
          EXPECT_EQ(p[i * s + j], 0.0f) << "future attention leaked";
        } else {
          EXPECT_GE(p[i * s + j], 0.0f);
        }
        row_sum += p[i * s + j];
      }
      EXPECT_NEAR(row_sum, 1.0, 1e-5);
    }
  }
}

double FullModelLoss(const TinyTransformer& model,
                     const std::vector<std::vector<float>>& params,
                     const std::vector<float>& x,
                     const std::vector<float>& target, size_t batch) {
  std::vector<float> acts = x;
  for (int l = 0; l < model.num_layers(); ++l) {
    std::vector<float> next;
    model.Forward(l, params[l].data(), acts, batch, &next, nullptr);
    acts = std::move(next);
  }
  std::vector<float> grad(acts.size());
  return MseLoss(acts.data(), target.data(), grad.data(), acts.size());
}

TEST(TransformerTest, GradientsMatchFiniteDifferences) {
  TinyTransformer model(TinyConfig());
  util::Rng rng(5);
  std::vector<std::vector<float>> params;
  for (int l = 0; l < model.num_layers(); ++l) {
    params.push_back(model.InitLayerParams(l, &rng));
  }
  const size_t batch = 2;
  std::vector<float> x(batch * model.InputSize()),
      target(batch * model.OutputSize());
  rng.FillGaussian(&x, 1.0);
  rng.FillGaussian(&target, 1.0);

  // Analytic pass.
  std::vector<LayerStash> stash(model.num_layers());
  std::vector<float> acts = x;
  for (int l = 0; l < model.num_layers(); ++l) {
    std::vector<float> next;
    model.Forward(l, params[l].data(), acts, batch, &next, &stash[l]);
    acts = std::move(next);
  }
  std::vector<float> grad(acts.size());
  MseLoss(acts.data(), target.data(), grad.data(), acts.size());
  std::vector<std::vector<float>> param_grads(model.num_layers());
  std::vector<float> input_grad;
  for (int l = model.num_layers() - 1; l >= 0; --l) {
    std::vector<float> grad_in;
    model.Backward(l, params[l].data(), stash[l], grad, batch, &grad_in,
                   &param_grads[l]);
    grad = std::move(grad_in);
  }
  input_grad = grad;

  // Spot-check every 7th parameter of every layer against central
  // differences (full sweep would be slow; stride covers all slices).
  const float eps = 1e-3f;
  for (int l = 0; l < model.num_layers(); ++l) {
    for (size_t i = 0; i < params[l].size(); i += 7) {
      auto perturbed = params;
      perturbed[l][i] += eps;
      const double up = FullModelLoss(model, perturbed, x, target, batch);
      perturbed[l][i] -= 2 * eps;
      const double down = FullModelLoss(model, perturbed, x, target, batch);
      const double numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(param_grads[l][i], numeric, 5e-2)
          << "layer " << l << " param " << i;
    }
  }
  // Input gradients too.
  for (size_t i = 0; i < x.size(); i += 5) {
    auto xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const double numeric = (FullModelLoss(model, params, xp, target, batch) -
                            FullModelLoss(model, params, xm, target, batch)) /
                           (2 * eps);
    EXPECT_NEAR(input_grad[i], numeric, 5e-2) << "input " << i;
  }
}

TEST(TransformerTest, HeadIsMeanPoolLinear) {
  TransformerConfig config = TinyConfig();
  config.num_blocks = 1;
  TinyTransformer model(config);
  const int head = 1;
  // Identity-ish head: out_dim=2, weights picking dims 0 and 1.
  std::vector<float> params(model.LayerParamCount(head), 0.0f);
  params[0 * 2 + 0] = 1.0f;  // W[0][0]
  params[1 * 2 + 1] = 1.0f;  // W[1][1]
  params[8 * 2 + 0] = 0.5f;  // bias[0]

  std::vector<float> in(4 * 8, 0.0f);
  for (size_t i = 0; i < 4; ++i) in[i * 8 + 0] = float(i);  // Mean 1.5.
  std::vector<float> out;
  model.Forward(head, params.data(), in, 1, &out, nullptr);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_FLOAT_EQ(out[0], 1.5f + 0.5f);
  EXPECT_FLOAT_EQ(out[1], 0.0f);
}

TEST(TransformerTest, LearnsSequenceClassificationWithCrossEntropy) {
  // End-to-end task realism: classify the sign of the sequence's mean
  // signal under noise, trained with softmax cross-entropy (the actual
  // pre-training loss family) through plain Adam.
  TransformerConfig config = TinyConfig();
  config.out_dim = 2;
  TinyTransformer model(config);
  util::Rng rng(21);
  std::vector<std::vector<float>> params, m_state, v_state;
  for (int l = 0; l < model.num_layers(); ++l) {
    params.push_back(model.InitLayerParams(l, &rng));
    m_state.emplace_back(params.back().size(), 0.0f);
    v_state.emplace_back(params.back().size(), 0.0f);
  }
  core::AdamConfig adam;
  adam.learning_rate = 3e-3;

  const size_t batch = 16;
  auto gen_batch = [&](std::vector<float>* x, std::vector<int>* labels) {
    x->assign(batch * model.InputSize(), 0.0f);
    labels->resize(batch);
    for (size_t b = 0; b < batch; ++b) {
      const int label = int(rng.Uniform(2));
      (*labels)[b] = label;
      const double bias = label == 0 ? 0.5 : -0.5;
      for (size_t i = 0; i < model.InputSize(); ++i) {
        (*x)[b * model.InputSize() + i] =
            float(rng.NextGaussian() * 0.5 + bias);
      }
    }
  };

  auto accuracy = [&](const std::vector<float>& logits,
                      const std::vector<int>& labels) {
    int correct = 0;
    for (size_t b = 0; b < batch; ++b) {
      const int predicted = logits[b * 2] > logits[b * 2 + 1] ? 0 : 1;
      if (predicted == labels[b]) ++correct;
    }
    return double(correct) / batch;
  };

  double last_accuracy = 0;
  for (int step = 1; step <= 150; ++step) {
    std::vector<float> x;
    std::vector<int> labels;
    gen_batch(&x, &labels);
    std::vector<LayerStash> stash(model.num_layers());
    std::vector<float> acts = x;
    for (int l = 0; l < model.num_layers(); ++l) {
      std::vector<float> next;
      model.Forward(l, params[l].data(), acts, batch, &next, &stash[l]);
      acts = std::move(next);
    }
    last_accuracy = accuracy(acts, labels);
    std::vector<float> grad(acts.size());
    SoftmaxCrossEntropy(acts.data(), labels.data(), grad.data(), batch, 2);
    for (int l = model.num_layers() - 1; l >= 0; --l) {
      std::vector<float> grad_in, grad_params;
      model.Backward(l, params[l].data(), stash[l], grad, batch, &grad_in,
                     &grad_params);
      core::AdamUpdate(adam, params[l].data(), m_state[l].data(),
                       v_state[l].data(), grad_params.data(),
                       params[l].size(), step);
      grad = std::move(grad_in);
    }
  }
  EXPECT_GT(last_accuracy, 0.85);
}

TEST(TransformerTest, RejectsIndivisibleHeads) {
  TransformerConfig config = TinyConfig();
  config.d_model = 10;
  config.num_heads = 3;
  EXPECT_DEATH(TinyTransformer model(config), "heads");
}

}  // namespace
}  // namespace angelptm::train
