#include "core/unified_scheduler.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/schedule.h"
#include "util/units.h"

namespace angelptm::core {
namespace {

using util::kMiB;

constexpr uint64_t kPage = 4 * kMiB;

/// Builds a uniform forward-then-backward step list: `layers` layers, each
/// with `pages_per_layer` shard pages, plus workspace. Backward steps reuse
/// the forward pages and release the retained boundary activations.
ScheduleInput MakeInput(int layers, int pages_per_layer, uint64_t budget,
                        int world_size = 4, uint64_t workspace = 2 * kMiB,
                        int64_t retained = int64_t(kMiB)) {
  ScheduleInput input;
  input.gpu_memory_budget = budget;
  input.world_size = world_size;
  uint64_t next_page = 0;
  std::vector<std::vector<PageRef>> layer_pages(layers);
  for (int l = 0; l < layers; ++l) {
    for (int p = 0; p < pages_per_layer; ++p) {
      layer_pages[l].push_back({next_page++, kPage});
    }
  }
  // Forward steps retain boundary activations; backward steps release them.
  for (int l = 0; l < layers; ++l) {
    SchedStep step;
    step.param_pages = layer_pages[l];
    step.workspace_bytes = workspace;
    step.retained_bytes = retained;
    step.compute_seconds = 1e-3;
    input.steps.push_back(step);
  }
  for (int l = layers - 1; l >= 0; --l) {
    SchedStep step;
    step.param_pages = layer_pages[l];
    step.workspace_bytes = workspace;
    step.retained_bytes = -retained;
    step.compute_seconds = 2e-3;
    input.steps.push_back(step);
  }
  return input;
}

int CountOp(const Schedule& schedule, TaskOp op) {
  int n = 0;
  for (const Task& t : schedule.tasks) {
    if (t.op == op) ++n;
  }
  return n;
}

TEST(SchedulerTest, AmpleMemoryPrefetchesEverythingUpFront) {
  // 4 layers x 2 pages, effectively unlimited budget.
  const auto input = MakeInput(4, 2, /*budget=*/10ull * 1024 * kMiB);
  auto schedule = BuildSchedule(input);
  ASSERT_TRUE(schedule.ok());
  // Every distinct page is moved exactly once, at iteration start.
  EXPECT_EQ(CountOp(*schedule, TaskOp::kMoveToGpu), 8);
  EXPECT_EQ(schedule->pages_prefetched_at_start, 8u);
  EXPECT_EQ(schedule->pages_fetched_on_demand, 0u);
  // One compute per step (4 fwd + 4 bwd), one gather per page use.
  EXPECT_EQ(CountOp(*schedule, TaskOp::kCompute), 8);
  EXPECT_EQ(CountOp(*schedule, TaskOp::kAllGather), 16);
}

TEST(SchedulerTest, Phase2AdvancesGathersUnderAmpleMemory) {
  const auto input = MakeInput(4, 2, 10ull * 1024 * kMiB);
  auto schedule = BuildSchedule(input);
  ASSERT_TRUE(schedule.ok());
  // With no memory pressure every gather beyond step 0 must advance to
  // trigger 0 for maximal overlap.
  for (const Task& task : schedule->tasks) {
    if (task.op == TaskOp::kAllGather) {
      EXPECT_EQ(task.trigger_id, 0) << "gather for step " << task.step;
    }
  }
  EXPECT_GT(schedule->gathers_advanced, 0u);
}

TEST(SchedulerTest, ScheduleNeverExceedsBudget) {
  for (uint64_t budget_pages : {12, 16, 24, 48}) {
    const auto input = MakeInput(6, 2, budget_pages * kPage);
    auto schedule = BuildSchedule(input);
    if (!schedule.ok()) continue;  // Tight budgets may be infeasible.
    const MemoryProfile profile = ReplaySchedule(input, schedule->tasks);
    EXPECT_LE(profile.peak, budget_pages * kPage)
        << "budget " << budget_pages << " pages";
    EXPECT_EQ(schedule->peak_gpu_bytes, profile.peak);
  }
}

TEST(SchedulerTest, TightMemoryDefersMovements) {
  // 8 layers x 4 pages = 32 pages of shard; budget fits only a fraction
  // (gather of one step alone needs 4 pages * world 4 = 16 pages).
  const auto input = MakeInput(8, 4, /*budget=*/24 * kPage);
  auto schedule = BuildSchedule(input);
  ASSERT_TRUE(schedule.ok());
  // Not everything can be staged up front.
  EXPECT_LT(schedule->pages_prefetched_at_start, 32u);
  // Every step still gets its gathers and compute.
  EXPECT_EQ(CountOp(*schedule, TaskOp::kCompute), 16);
  EXPECT_EQ(CountOp(*schedule, TaskOp::kAllGather), 64);
  EXPECT_LE(schedule->peak_gpu_bytes, 24 * kPage);
}

TEST(SchedulerTest, InfeasibleModelReturnsOutOfMemory) {
  // A single step whose gather alone exceeds the budget.
  ScheduleInput input;
  input.gpu_memory_budget = 4 * kPage;
  input.world_size = 8;
  SchedStep step;
  step.param_pages = {{0, kPage}};  // Gather needs 8 pages.
  step.workspace_bytes = 0;
  input.steps.push_back(step);
  auto schedule = BuildSchedule(input);
  ASSERT_FALSE(schedule.ok());
  EXPECT_TRUE(schedule.status().IsOutOfMemory());
}

TEST(SchedulerTest, EveryStepGathersItsPagesBeforeCompute) {
  const auto input = MakeInput(5, 3, 40 * kPage);
  auto schedule = BuildSchedule(input);
  ASSERT_TRUE(schedule.ok());
  // For each compute step, all its gathers must carry trigger <= step.
  for (const Task& task : schedule->tasks) {
    if (task.op == TaskOp::kAllGather) {
      EXPECT_LE(task.trigger_id, task.step);
    }
  }
}

TEST(SchedulerTest, MovedPagesAreDistinct) {
  const auto input = MakeInput(6, 2, 64 * kPage);
  auto schedule = BuildSchedule(input);
  ASSERT_TRUE(schedule.ok());
  std::set<uint64_t> moved;
  for (const Task& task : schedule->tasks) {
    if (task.op == TaskOp::kMoveToGpu) {
      EXPECT_TRUE(moved.insert(task.page_id).second)
          << "page " << task.page_id << " moved twice";
    }
  }
}

TEST(SchedulerTest, BackwardStepsReuseForwardPagesWithoutNewMoves) {
  const auto input = MakeInput(3, 2, 10ull * 1024 * kMiB);
  auto schedule = BuildSchedule(input);
  ASSERT_TRUE(schedule.ok());
  // 6 distinct pages, 6 moves; backward gathers (steps 3..5) reference the
  // same page ids as forward gathers (steps 0..2).
  EXPECT_EQ(CountOp(*schedule, TaskOp::kMoveToGpu), 6);
  std::set<uint64_t> fwd_pages, bwd_pages;
  for (const Task& task : schedule->tasks) {
    if (task.op != TaskOp::kAllGather) continue;
    (task.step < 3 ? fwd_pages : bwd_pages).insert(task.page_id);
  }
  EXPECT_EQ(fwd_pages, bwd_pages);
}

TEST(SchedulerTest, LargerBudgetNeverPrefetchesLess) {
  // Monotonicity property: growing the budget cannot reduce the number of
  // pages staged at iteration start.
  size_t previous = 0;
  for (uint64_t budget_pages : {20, 28, 40, 64, 128}) {
    const auto input = MakeInput(8, 3, budget_pages * kPage);
    auto schedule = BuildSchedule(input);
    ASSERT_TRUE(schedule.ok()) << budget_pages;
    EXPECT_GE(schedule->pages_prefetched_at_start, previous)
        << "budget " << budget_pages;
    previous = schedule->pages_prefetched_at_start;
  }
}

TEST(SchedulerTest, WorldSizeOneStillSchedules) {
  const auto input = MakeInput(4, 2, 64 * kPage, /*world_size=*/1);
  auto schedule = BuildSchedule(input);
  ASSERT_TRUE(schedule.ok());
  EXPECT_EQ(CountOp(*schedule, TaskOp::kCompute), 8);
}

TEST(SchedulerTest, InvalidWorldSizeRejected) {
  ScheduleInput input;
  input.world_size = 0;
  EXPECT_TRUE(BuildSchedule(input).status().IsInvalidArgument());
}

TEST(SchedulerTest, InconsistentPageSizesRejected) {
  ScheduleInput input;
  input.gpu_memory_budget = 100 * kPage;
  input.world_size = 2;
  SchedStep a;
  a.param_pages = {{7, kPage}};
  SchedStep b;
  b.param_pages = {{7, 2 * kPage}};  // Same page id, different size.
  input.steps = {a, b};
  EXPECT_TRUE(BuildSchedule(input).status().IsInvalidArgument());
}

TEST(ReplayTest, GatherFreedAfterServingStep) {
  ScheduleInput input;
  input.gpu_memory_budget = 100 * kPage;
  input.world_size = 4;
  SchedStep s0;
  s0.param_pages = {{0, kPage}};
  s0.workspace_bytes = 0;
  SchedStep s1 = s0;
  s1.param_pages = {{1, kPage}};
  input.steps = {s0, s1};

  const std::vector<Task> tasks = {
      {TaskOp::kAllGather, 0, kPage, 0, 0},
      {TaskOp::kCompute, ~0ull, 0, 0, 0},
      {TaskOp::kAllGather, 1, kPage, 1, 1},
      {TaskOp::kCompute, ~0ull, 0, 1, 1},
  };
  const MemoryProfile profile = ReplaySchedule(input, tasks);
  // Each step sees only its own 4-page gather: peak is 4 pages, not 8.
  EXPECT_EQ(profile.peak, 4 * kPage);
  EXPECT_EQ(profile.usage_during_step[0], 4 * kPage);
  EXPECT_EQ(profile.usage_during_step[1], 4 * kPage);
}

TEST(ReplayTest, RetainedBytesAccumulateAndRelease) {
  ScheduleInput input;
  input.gpu_memory_budget = 100 * kPage;
  input.world_size = 1;
  SchedStep fwd;
  fwd.retained_bytes = int64_t(kPage);
  SchedStep bwd;
  bwd.retained_bytes = -int64_t(kPage);
  input.steps = {fwd, fwd, bwd, bwd};

  std::vector<Task> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back({TaskOp::kCompute, ~0ull, 0, i, i});
  }
  const MemoryProfile profile = ReplaySchedule(input, tasks);
  EXPECT_EQ(profile.usage_during_step[1], kPage);      // 1 retained so far.
  EXPECT_EQ(profile.usage_during_step[2], 2 * kPage);  // Both retained.
  EXPECT_EQ(profile.usage_during_step[3], kPage);      // One released.
  EXPECT_EQ(profile.peak, 2 * kPage);
}

TEST(FormatScheduleTest, RendersTasks) {
  const std::vector<Task> tasks = {
      {TaskOp::kMoveToGpu, 3, kPage, 0, 0},
      {TaskOp::kCompute, ~0ull, 0, 0, 0},
  };
  const std::string text = FormatSchedule(tasks);
  EXPECT_NE(text.find("move_to_gpu page 3"), std::string::npos);
  EXPECT_NE(text.find("compute step 0"), std::string::npos);
}

}  // namespace
}  // namespace angelptm::core
