#include "core/checkpoint_manager.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/allocator.h"
#include "mem/hierarchical_memory.h"
#include "util/fault_injector.h"

namespace angelptm::core {
namespace {

class CheckpointManagerTest : public ::testing::Test {
 protected:
  CheckpointManagerTest() : memory_(MemoryOptions()), allocator_(&memory_) {}

  void SetUp() override { util::FaultInjector::Instance().Reset(); }
  void TearDown() override {
    util::FaultInjector::Instance().Reset();
    std::filesystem::remove_all(dir_);
  }

  static mem::HierarchicalMemoryOptions MemoryOptions() {
    mem::HierarchicalMemoryOptions options;
    options.page_bytes = 16 * 1024;
    options.gpu_capacity_bytes = 4ull << 20;
    options.cpu_capacity_bytes = 64ull << 20;
    return options;
  }

  std::string FreshDir(const char* tag) {
    dir_ = "/tmp/angelptm_ckptmgr_" + std::to_string(::getpid()) + "_" + tag;
    std::filesystem::remove_all(dir_);
    return dir_;
  }

  std::unique_ptr<LockFreeUpdater> MakeUpdater() {
    LockFreeUpdater::Options options;
    auto updater = std::make_unique<LockFreeUpdater>(&allocator_, options);
    EXPECT_TRUE(updater->AddLayer({1.0f, 2.0f, 3.0f}).ok());
    return updater;
  }

  static TrainProgress ProgressAt(int64_t step) {
    TrainProgress progress;
    progress.global_step = step;
    progress.has_progress = true;
    return progress;
  }

  mem::HierarchicalMemory memory_;
  Allocator allocator_;
  std::string dir_;
};

TEST_F(CheckpointManagerTest, RotationKeepsOnlyLastK) {
  CheckpointManager::Options options;
  options.dir = FreshDir("rotate");
  options.keep_last = 2;
  CheckpointManager manager(options);
  ASSERT_TRUE(manager.Init().ok());
  auto updater = MakeUpdater();

  for (int64_t step : {10, 20, 30, 40}) {
    ASSERT_TRUE(updater->OffloadGrads(0, {0.1f, 0.1f, 0.1f}).ok());
    ASSERT_TRUE(updater->UpdateOnce().ok());
    ASSERT_TRUE(manager.Save(updater.get(), ProgressAt(step)).ok());
  }
  const std::vector<std::string> files = manager.ListCheckpoints();
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0], manager.PathForStep(30));
  EXPECT_EQ(files[1], manager.PathForStep(40));
  EXPECT_FALSE(std::filesystem::exists(manager.PathForStep(10)));
  EXPECT_FALSE(std::filesystem::exists(manager.PathForStep(20)));

  const CheckpointManager::Stats stats = manager.Snapshot();
  EXPECT_EQ(stats.saves, 4u);
  EXPECT_EQ(stats.save_failures, 0u);
  EXPECT_EQ(stats.last_saved_step, 40);
  EXPECT_GT(stats.bytes_written, 0u);
  EXPECT_EQ(stats.save_us.count, 4u);
}

TEST_F(CheckpointManagerTest, RotationFailureIsCountedNotFatal) {
  CheckpointManager::Options options;
  options.dir = FreshDir("rotatefail");
  options.keep_last = 1;
  CheckpointManager manager(options);
  ASSERT_TRUE(manager.Init().ok());
  auto updater = MakeUpdater();
  ASSERT_TRUE(manager.Save(updater.get(), ProgressAt(10)).ok());

  // An undeletable entry where an old checkpoint would be: a non-empty
  // directory named like a step-5 checkpoint. Rotation used to drop the
  // std::filesystem::remove result on the floor; it must now count the
  // failure, still delete what it can, and keep the save green.
  const std::string stuck = manager.PathForStep(5);
  std::filesystem::create_directory(stuck);
  std::ofstream(stuck + "/pin").put('x');

  ASSERT_TRUE(manager.Save(updater.get(), ProgressAt(20)).ok());
  const CheckpointManager::Stats stats = manager.Snapshot();
  EXPECT_EQ(stats.saves, 2u);
  EXPECT_EQ(stats.rotate_failures, 1u);
  EXPECT_FALSE(std::filesystem::exists(manager.PathForStep(10)));
  EXPECT_TRUE(std::filesystem::exists(manager.PathForStep(20)));
  EXPECT_TRUE(std::filesystem::exists(stuck));
}

TEST_F(CheckpointManagerTest, LoadLatestFallsBackPastCorruptNewest) {
  CheckpointManager::Options options;
  options.dir = FreshDir("fallback");
  CheckpointManager manager(options);
  ASSERT_TRUE(manager.Init().ok());
  auto updater = MakeUpdater();

  ASSERT_TRUE(manager.Save(updater.get(), ProgressAt(10)).ok());
  std::vector<float> good_params;
  ASSERT_TRUE(updater->ReadMasterParams(0, &good_params).ok());

  ASSERT_TRUE(updater->OffloadGrads(0, {1.0f, 1.0f, 1.0f}).ok());
  ASSERT_TRUE(updater->UpdateOnce().ok());
  ASSERT_TRUE(manager.Save(updater.get(), ProgressAt(20)).ok());

  // Corrupt the newest file (flip a byte in the middle).
  {
    std::fstream file(manager.PathForStep(20),
                      std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(60);
    char byte = 0;
    file.read(&byte, 1);
    file.seekp(60);
    byte ^= 0x5A;
    file.write(&byte, 1);
  }

  auto recovered = MakeUpdater();
  auto progress = manager.LoadLatest(recovered.get());
  ASSERT_TRUE(progress.ok()) << progress.status();
  EXPECT_EQ(progress->global_step, 10);  // The previous checkpoint won.
  std::vector<float> restored;
  ASSERT_TRUE(recovered->ReadMasterParams(0, &restored).ok());
  EXPECT_EQ(restored, good_params);
  // The corrupt file is skipped, counted, and left for post-mortems.
  EXPECT_EQ(manager.Snapshot().fallbacks, 1u);
  EXPECT_EQ(manager.Snapshot().loads, 1u);
  EXPECT_TRUE(std::filesystem::exists(manager.PathForStep(20)));
}

TEST_F(CheckpointManagerTest, EmptyDirectoryIsNotFound) {
  CheckpointManager::Options options;
  options.dir = FreshDir("empty");
  CheckpointManager manager(options);
  ASSERT_TRUE(manager.Init().ok());
  auto updater = MakeUpdater();
  EXPECT_TRUE(manager.LoadLatest(updater.get()).status().IsNotFound());
  EXPECT_TRUE(manager.ListCheckpoints().empty());
}

TEST_F(CheckpointManagerTest, FailedSaveLeavesExistingCheckpointsIntact) {
  CheckpointManager::Options options;
  options.dir = FreshDir("savefail");
  CheckpointManager manager(options);
  ASSERT_TRUE(manager.Init().ok());
  auto updater = MakeUpdater();
  ASSERT_TRUE(manager.Save(updater.get(), ProgressAt(10)).ok());

  util::FaultRule rule;
  rule.nth_call = 1;
  util::FaultInjector::Instance().Arm("checkpoint.write", rule);
  EXPECT_FALSE(manager.Save(updater.get(), ProgressAt(20)).ok());

  rule = util::FaultRule();
  rule.nth_call = 1;
  util::FaultInjector::Instance().Arm("checkpoint.rename", rule);
  EXPECT_FALSE(manager.Save(updater.get(), ProgressAt(30)).ok());

  const CheckpointManager::Stats stats = manager.Snapshot();
  EXPECT_EQ(stats.saves, 1u);
  EXPECT_EQ(stats.save_failures, 2u);
  EXPECT_EQ(stats.last_saved_step, 10);
  // The surviving checkpoint still loads; no tmp litter was published.
  EXPECT_EQ(manager.ListCheckpoints(),
            std::vector<std::string>{manager.PathForStep(10)});
  auto recovered = MakeUpdater();
  auto progress = manager.LoadLatest(recovered.get());
  ASSERT_TRUE(progress.ok()) << progress.status();
  EXPECT_EQ(progress->global_step, 10);
}

TEST_F(CheckpointManagerTest, PathForStepIsStable) {
  CheckpointManager::Options options;
  options.dir = FreshDir("paths");
  options.basename = "model";
  CheckpointManager manager(options);
  EXPECT_EQ(manager.PathForStep(42), dir_ + "/model-000000042.ckpt");
}

}  // namespace
}  // namespace angelptm::core
