#include "core/engine.h"

#include <unistd.h>

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "train/dataset.h"
#include "train/kernels.h"
#include "train/mlp.h"
#include "train/transformer.h"
#include "util/fault_injector.h"
#include "util/random.h"

namespace angelptm::core {
namespace {

EngineOptions SmallEngineOptions(uint64_t gpu_pages = 6) {
  EngineOptions options;
  options.memory.page_bytes = 16 * 1024;
  options.memory.gpu_capacity_bytes = gpu_pages * 16 * 1024;
  options.memory.cpu_capacity_bytes = 16ull << 20;
  options.adam.learning_rate = 3e-3;
  return options;
}

/// Runs `steps` full training steps of a small MLP through the engine.
double TrainThroughEngine(Engine* engine, const train::MlpModel& model,
                          int steps, util::Rng* rng) {
  train::SyntheticRegression dataset(16, 32, 4, 99);
  const size_t batch = 16;
  std::vector<float> x, y;
  double loss = 0;
  for (int step = 0; step < steps; ++step) {
    dataset.GenBatch(rng, batch, &x, &y);
    EXPECT_TRUE(engine->BeginStep().ok());
    std::vector<train::LayerStash> stash(model.num_layers());
    std::vector<float> acts = x;
    for (int l = 0; l < model.num_layers(); ++l) {
      auto params = engine->UseLayerParams(l);
      EXPECT_TRUE(params.ok()) << params.status();
      std::vector<float> next;
      model.Forward(l, params->data(), acts, batch, &next, &stash[l]);
      acts = std::move(next);
    }
    std::vector<float> grad(acts.size());
    loss = train::MseLoss(acts.data(), y.data(), grad.data(), acts.size());
    for (int l = model.num_layers() - 1; l >= 0; --l) {
      auto params = engine->UseLayerParams(l);
      EXPECT_TRUE(params.ok()) << params.status();
      std::vector<float> grad_in, grad_params;
      model.Backward(l, params->data(), stash[l], grad, batch, &grad_in,
                     &grad_params);
      EXPECT_TRUE(engine->PushGrads(l, grad_params).ok());
      grad = std::move(grad_in);
    }
    EXPECT_TRUE(engine->EndStep().ok());
  }
  return loss;
}

TEST(EngineTest, TrainsEndToEndWithTinyGpuTier) {
  auto engine = Engine::Create(SmallEngineOptions());
  ASSERT_TRUE(engine.ok());
  train::MlpModel model({{16, 64, 64, 4}});
  util::Rng rng(3);
  for (int l = 0; l < model.num_layers(); ++l) {
    ASSERT_TRUE(
        (*engine)->RegisterLayer(model.InitLayerParams(l, &rng)).ok());
  }
  const double final_loss = TrainThroughEngine(engine->get(), model, 120, &rng);
  EXPECT_LT(final_loss, 0.3);
  EXPECT_EQ((*engine)->steps_completed(), 120);
}

TEST(EngineTest, ScheduleBuiltAfterTracedFirstStep) {
  auto engine = Engine::Create(SmallEngineOptions());
  ASSERT_TRUE(engine.ok());
  train::MlpModel model({{16, 32, 4}});
  util::Rng rng(5);
  for (int l = 0; l < model.num_layers(); ++l) {
    ASSERT_TRUE(
        (*engine)->RegisterLayer(model.InitLayerParams(l, &rng)).ok());
  }
  EXPECT_EQ((*engine)->schedule(), nullptr);
  TrainThroughEngine(engine->get(), model, 1, &rng);
  ASSERT_NE((*engine)->schedule(), nullptr);
  // Trace saw 2 accesses per layer (forward + backward) = 4 ops.
  EXPECT_EQ((*engine)->tracer().num_ops(), 4);
  const auto traces = (*engine)->tracer().Traces();
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].first_id, 0);
  EXPECT_EQ(traces[0].end_id, 3);  // Layer 0: first fwd op, last bwd op.
  EXPECT_EQ(traces[1].first_id, 1);
  EXPECT_EQ(traces[1].end_id, 2);
}

TEST(EngineTest, PrefetchesHitAfterWarmup) {
  auto engine = Engine::Create(SmallEngineOptions(/*gpu_pages=*/32));
  ASSERT_TRUE(engine.ok());
  train::MlpModel model({{16, 64, 64, 4}});
  util::Rng rng(7);
  for (int l = 0; l < model.num_layers(); ++l) {
    ASSERT_TRUE(
        (*engine)->RegisterLayer(model.InitLayerParams(l, &rng)).ok());
  }
  TrainThroughEngine(engine->get(), model, 30, &rng);
  // With an ample GPU tier every post-trace access should be a hit.
  EXPECT_GT((*engine)->prefetch_hits() + (*engine)->prefetch_waits(), 0u);
  EXPECT_GT((*engine)->prefetch_hits(), (*engine)->prefetch_waits());
}

TEST(EngineTest, GpuTierReturnsToEmptyBetweenSteps) {
  auto engine = Engine::Create(SmallEngineOptions());
  ASSERT_TRUE(engine.ok());
  train::MlpModel model({{16, 32, 4}});
  util::Rng rng(9);
  for (int l = 0; l < model.num_layers(); ++l) {
    ASSERT_TRUE(
        (*engine)->RegisterLayer(model.InitLayerParams(l, &rng)).ok());
  }
  TrainThroughEngine(engine->get(), model, 3, &rng);
  EXPECT_EQ((*engine)->memory()->used_bytes(mem::DeviceKind::kGpu), 0u);
}

TEST(EngineTest, LockFreeModeTrains) {
  EngineOptions options = SmallEngineOptions();
  options.lock_free = true;
  auto engine = Engine::Create(options);
  ASSERT_TRUE(engine.ok());
  train::MlpModel model({{16, 64, 4}});
  util::Rng rng(11);
  for (int l = 0; l < model.num_layers(); ++l) {
    ASSERT_TRUE(
        (*engine)->RegisterLayer(model.InitLayerParams(l, &rng)).ok());
  }
  const double final_loss = TrainThroughEngine(engine->get(), model, 80, &rng);
  ASSERT_TRUE((*engine)->updater()->DrainUpdates().ok());
  EXPECT_LT(final_loss, 1.0);
  EXPECT_GT((*engine)->updater()->Snapshot().updates_applied, 0u);
}

TEST(EngineTest, TransformerTrainsThroughEngine) {
  // The paper's actual model class — causal attention blocks — through the
  // full paged engine path.
  auto engine = Engine::Create(SmallEngineOptions(/*gpu_pages=*/16));
  ASSERT_TRUE(engine.ok());
  train::TransformerConfig config;
  config.seq_len = 4;
  config.d_model = 8;
  config.num_heads = 2;
  config.d_ffn = 16;
  config.num_blocks = 2;
  config.out_dim = 2;
  train::TinyTransformer model(config);
  util::Rng rng(23);
  for (int l = 0; l < model.num_layers(); ++l) {
    ASSERT_TRUE(
        (*engine)->RegisterLayer(model.InitLayerParams(l, &rng)).ok());
  }
  train::SyntheticRegression dataset(model.InputSize(), 16,
                                     model.OutputSize(), 99);
  const size_t batch = 8;
  std::vector<float> x, y;
  double first_loss = 0, loss = 0;
  for (int step = 0; step < 80; ++step) {
    dataset.GenBatch(&rng, batch, &x, &y);
    ASSERT_TRUE((*engine)->BeginStep().ok());
    std::vector<train::LayerStash> stash(model.num_layers());
    std::vector<float> acts = x;
    for (int l = 0; l < model.num_layers(); ++l) {
      auto params = (*engine)->UseLayerParams(l);
      ASSERT_TRUE(params.ok());
      std::vector<float> next;
      model.Forward(l, params->data(), acts, batch, &next, &stash[l]);
      acts = std::move(next);
    }
    std::vector<float> grad(acts.size());
    loss = train::MseLoss(acts.data(), y.data(), grad.data(), acts.size());
    if (step == 0) first_loss = loss;
    for (int l = model.num_layers() - 1; l >= 0; --l) {
      auto params = (*engine)->UseLayerParams(l);
      ASSERT_TRUE(params.ok());
      std::vector<float> grad_in, grad_params;
      model.Backward(l, params->data(), stash[l], grad, batch, &grad_in,
                     &grad_params);
      ASSERT_TRUE((*engine)->PushGrads(l, grad_params).ok());
      grad = std::move(grad_in);
    }
    ASSERT_TRUE((*engine)->EndStep().ok());
  }
  EXPECT_LT(loss, first_loss);
}

TEST(EngineTest, TraceRecordsProduceTimes) {
  auto engine = Engine::Create(SmallEngineOptions());
  ASSERT_TRUE(engine.ok());
  train::MlpModel model({{16, 32, 4}});
  util::Rng rng(31);
  for (int l = 0; l < model.num_layers(); ++l) {
    ASSERT_TRUE(
        (*engine)->RegisterLayer(model.InitLayerParams(l, &rng)).ok());
  }
  TrainThroughEngine(engine->get(), model, 1, &rng);
  for (const auto& trace : (*engine)->tracer().Traces()) {
    EXPECT_GE(trace.cpu_time, 0.0);
    EXPECT_GT(trace.gpu_time, 0.0);  // The tier move took real time.
    EXPECT_GT(trace.bytes, 0u);
  }
}

TEST(EngineTest, GpuCachedMasterStates) {
  // §4.2's dynamic cache in the real engine: master states can live in the
  // fast tier directly, so updates never touch PCIe or the CPU tier.
  EngineOptions options = SmallEngineOptions(/*gpu_pages=*/64);
  options.master_device = mem::DeviceKind::kGpu;
  auto engine = Engine::Create(options);
  ASSERT_TRUE(engine.ok());
  train::MlpModel model({{16, 32, 4}});
  util::Rng rng(33);
  for (int l = 0; l < model.num_layers(); ++l) {
    ASSERT_TRUE(
        (*engine)->RegisterLayer(model.InitLayerParams(l, &rng)).ok());
  }
  const double final_loss = TrainThroughEngine(engine->get(), model, 40, &rng);
  EXPECT_LT(final_loss, 2.0);
  EXPECT_GT((*engine)->updater()->Snapshot().updates_applied, 0u);
}

TEST(EngineTest, SsdMasterStatesThroughEngine) {
  EngineOptions options = SmallEngineOptions();
  options.memory.ssd_capacity_bytes = 16ull << 20;
  options.memory.ssd_path =
      "/tmp/angelptm_engine_ssd_" + std::to_string(::getpid()) + ".bin";
  options.master_device = mem::DeviceKind::kSsd;
  auto engine = Engine::Create(options);
  ASSERT_TRUE(engine.ok());
  train::MlpModel model({{16, 32, 4}});
  util::Rng rng(29);
  for (int l = 0; l < model.num_layers(); ++l) {
    ASSERT_TRUE(
        (*engine)->RegisterLayer(model.InitLayerParams(l, &rng)).ok());
  }
  TrainThroughEngine(engine->get(), model, 10, &rng);
  EXPECT_GT((*engine)->memory()->ssd()->Snapshot().bytes_written, 0u);
  EXPECT_GT((*engine)->memory()->ssd()->Snapshot().bytes_read, 0u);
}

TEST(EngineTest, ProtocolErrors) {
  auto engine = Engine::Create(SmallEngineOptions());
  ASSERT_TRUE(engine.ok());
  // No layers yet.
  EXPECT_EQ((*engine)->BeginStep().code(),
            util::StatusCode::kFailedPrecondition);
  ASSERT_TRUE((*engine)->RegisterLayer({1.0f, 2.0f}).ok());
  // Use outside a step.
  EXPECT_EQ((*engine)->UseLayerParams(0).status().code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_EQ((*engine)->EndStep().code(),
            util::StatusCode::kFailedPrecondition);
  ASSERT_TRUE((*engine)->BeginStep().ok());
  // Double begin.
  EXPECT_EQ((*engine)->BeginStep().code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_TRUE(
      (*engine)->UseLayerParams(7).status().IsInvalidArgument());
  ASSERT_TRUE((*engine)->UseLayerParams(0).ok());
  ASSERT_TRUE((*engine)->EndStep().ok());
  // Registration after training started.
  EXPECT_EQ((*engine)->RegisterLayer({1.0f}).status().code(),
            util::StatusCode::kFailedPrecondition);
}

TEST(EngineTest, ActivationStashRoundTripsAndSpills) {
  // GPU tier of 2 pages: activations can't all stay on the fast tier, so
  // stashes must spill to the CPU tier and still round-trip (within fp16
  // precision — activations are fp16 per Table 1).
  EngineOptions options = SmallEngineOptions(/*gpu_pages=*/2);
  auto engine = Engine::Create(options);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->RegisterLayer({1.0f, 2.0f}).ok());
  ASSERT_TRUE((*engine)->BeginStep().ok());

  std::vector<float> big(20000);
  for (size_t i = 0; i < big.size(); ++i) big[i] = float(i % 512) * 0.25f;
  ASSERT_TRUE((*engine)->StashActivation(0, big).ok());
  // Double-stash rejected.
  EXPECT_EQ((*engine)->StashActivation(0, big).code(),
            util::StatusCode::kAlreadyExists);

  auto fetched = (*engine)->FetchActivation(0);
  ASSERT_TRUE(fetched.ok());
  ASSERT_EQ(fetched->size(), big.size());
  for (size_t i = 0; i < big.size(); i += 97) {
    EXPECT_NEAR((*fetched)[i], big[i], 0.1f) << i;  // fp16 rounding.
  }
  // Fetch again: gone.
  EXPECT_TRUE((*engine)->FetchActivation(0).status().IsNotFound());
  ASSERT_TRUE((*engine)->EndStep().ok());
}

TEST(EngineTest, UnfetchedStashReleasedAtStepEnd) {
  auto engine = Engine::Create(SmallEngineOptions());
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->RegisterLayer({1.0f}).ok());
  ASSERT_TRUE((*engine)->BeginStep().ok());
  ASSERT_TRUE(
      (*engine)->StashActivation(0, std::vector<float>(64, 1.0f)).ok());
  ASSERT_TRUE((*engine)->EndStep().ok());
  EXPECT_EQ((*engine)->memory()->used_bytes(mem::DeviceKind::kGpu), 0u);
  ASSERT_TRUE((*engine)->BeginStep().ok());
  EXPECT_TRUE((*engine)->FetchActivation(0).status().IsNotFound());
  ASSERT_TRUE((*engine)->EndStep().ok());
}

TEST(EngineTest, TrainsWithEngineManagedActivations) {
  // Full flow where the caller keeps NO activations itself: boundary
  // activations go through StashActivation/FetchActivation and interior
  // activations are recomputed in backward (the §4.2 recompute flow).
  auto engine = Engine::Create(SmallEngineOptions(/*gpu_pages=*/8));
  ASSERT_TRUE(engine.ok());
  train::MlpModel model({{16, 64, 64, 4}});
  util::Rng rng(17);
  for (int l = 0; l < model.num_layers(); ++l) {
    ASSERT_TRUE(
        (*engine)->RegisterLayer(model.InitLayerParams(l, &rng)).ok());
  }
  train::SyntheticRegression dataset(16, 32, 4, 99);
  const size_t batch = 16;
  std::vector<float> x, y;
  double loss = 0;
  for (int step = 0; step < 100; ++step) {
    dataset.GenBatch(&rng, batch, &x, &y);
    ASSERT_TRUE((*engine)->BeginStep().ok());
    // Forward: stash only each layer's INPUT (the boundary), drop the rest.
    std::vector<float> acts = x;
    for (int l = 0; l < model.num_layers(); ++l) {
      ASSERT_TRUE((*engine)->StashActivation(l, acts).ok());
      auto params = (*engine)->UseLayerParams(l);
      ASSERT_TRUE(params.ok());
      std::vector<float> next;
      model.Forward(l, params->data(), acts, batch, &next, nullptr);
      acts = std::move(next);
    }
    std::vector<float> grad(acts.size());
    loss = train::MseLoss(acts.data(), y.data(), grad.data(), acts.size());
    // Backward: fetch the boundary, recompute the layer interior, then
    // differentiate.
    for (int l = model.num_layers() - 1; l >= 0; --l) {
      auto boundary = (*engine)->FetchActivation(l);
      ASSERT_TRUE(boundary.ok());
      auto params = (*engine)->UseLayerParams(l);
      ASSERT_TRUE(params.ok());
      train::LayerStash stash;
      std::vector<float> recomputed;
      model.Forward(l, params->data(), *boundary, batch, &recomputed,
                    &stash);  // Recompute.
      std::vector<float> grad_in, grad_params;
      model.Backward(l, params->data(), stash, grad, batch, &grad_in,
                     &grad_params);
      ASSERT_TRUE((*engine)->PushGrads(l, grad_params).ok());
      grad = std::move(grad_in);
    }
    ASSERT_TRUE((*engine)->EndStep().ok());
  }
  EXPECT_LT(loss, 0.5);  // Converges despite fp16 boundary stashes.
}

TEST(EngineTest, HitWaitAccountingCoversEveryScheduledUseExactlyOnce) {
  // Tiny GPU tier forces mid-step evictions — the configuration that used
  // to double-count a use as both hit and wait when an eviction pushed a
  // settled layer back to CPU.
  EngineOptions options;
  options.memory.page_bytes = 4 * 1024;
  options.memory.gpu_capacity_bytes = 3 * 4 * 1024;
  options.memory.cpu_capacity_bytes = 16ull << 20;
  options.adam.learning_rate = 3e-3;
  auto engine = Engine::Create(options);
  ASSERT_TRUE(engine.ok());
  train::MlpModel model({{16, 48, 48, 4}});
  util::Rng rng(41);
  for (int l = 0; l < model.num_layers(); ++l) {
    ASSERT_TRUE(
        (*engine)->RegisterLayer(model.InitLayerParams(l, &rng)).ok());
  }
  const int steps = 25;
  TrainThroughEngine(engine->get(), model, steps, &rng);
  // Each post-warmup step uses every layer twice (forward + backward).
  const uint64_t expected_uses =
      uint64_t(steps - 1) * 2 * model.num_layers();
  EXPECT_EQ((*engine)->scheduled_uses(), expected_uses);
  EXPECT_EQ((*engine)->prefetch_hits() + (*engine)->prefetch_waits(),
            expected_uses);
}

TEST(EngineTest, AmpleGpuAccountingIsAllHits) {
  // With room for everything, the invariant still holds and every
  // scheduled use resolves as a hit (the staged-settled-resident case that
  // was previously left uncounted).
  auto engine = Engine::Create(SmallEngineOptions(/*gpu_pages=*/32));
  ASSERT_TRUE(engine.ok());
  train::MlpModel model({{16, 64, 64, 4}});
  util::Rng rng(43);
  for (int l = 0; l < model.num_layers(); ++l) {
    ASSERT_TRUE(
        (*engine)->RegisterLayer(model.InitLayerParams(l, &rng)).ok());
  }
  TrainThroughEngine(engine->get(), model, 10, &rng);
  EXPECT_EQ((*engine)->prefetch_hits() + (*engine)->prefetch_waits(),
            (*engine)->scheduled_uses());
  EXPECT_GT((*engine)->prefetch_hits(), (*engine)->prefetch_waits());
}

TEST(EngineTest, PlannerLearnsTheSawtoothLayerOrder) {
  auto engine = Engine::Create(SmallEngineOptions());
  ASSERT_TRUE(engine.ok());
  train::MlpModel model({{16, 32, 32, 4}});
  util::Rng rng(47);
  for (int l = 0; l < model.num_layers(); ++l) {
    ASSERT_TRUE(
        (*engine)->RegisterLayer(model.InitLayerParams(l, &rng)).ok());
  }
  EXPECT_FALSE((*engine)->planner().trained());
  TrainThroughEngine(engine->get(), model, 3, &rng);
  const auto& planner = (*engine)->planner();
  ASSERT_TRUE(planner.trained());
  // Forward 0..L-1 then backward L-1..0 — and the steady-state steps replay
  // it exactly (no mispredicts on the repeating schedule).
  const std::vector<uint64_t> expected = {0, 1, 2, 2, 1, 0};
  EXPECT_EQ(planner.learned_order(), expected);
  EXPECT_EQ(planner.Snapshot().mispredicts, 0u);
  EXPECT_EQ(planner.Snapshot().predicted_hits, 2 * expected.size());
}

TEST(EngineTest, FailedPrefetchMovesAreCountedNotLost) {
  // Regression for the dropped-Status bug: MoveWithEviction used to wait()
  // on a victim's in-flight futures and discard their errors. Arm the copy
  // engine's failpoint after warmup on an eviction-heavy config: prefetch
  // moves fail, the engine must observe and count every failure, and
  // training must still complete through the synchronous fallback.
  util::FaultInjector::Instance().Reset();
  EngineOptions options;
  options.memory.page_bytes = 4 * 1024;
  options.memory.gpu_capacity_bytes = 3 * 4 * 1024;
  options.memory.cpu_capacity_bytes = 16ull << 20;
  options.adam.learning_rate = 3e-3;
  auto engine = Engine::Create(options);
  ASSERT_TRUE(engine.ok());
  train::MlpModel model({{16, 48, 48, 4}});
  util::Rng rng(53);
  for (int l = 0; l < model.num_layers(); ++l) {
    ASSERT_TRUE(
        (*engine)->RegisterLayer(model.InitLayerParams(l, &rng)).ok());
  }
  // Warmup + a few clean steps first so the schedule and planner exist. A
  // loaded machine can see benign warmup failures (prefetches racing
  // evictions on the tiny GPU tier hit "gpu tier full"), so take the count
  // as a baseline rather than asserting zero.
  TrainThroughEngine(engine->get(), model, 3, &rng);
  const uint64_t warmup_failures = (*engine)->prefetch_move_failures();

  util::FaultRule rule;
  rule.permanent = true;
  util::FaultInjector::Instance().Arm("copy_engine.move", rule);
  TrainThroughEngine(engine->get(), model, 5, &rng);
  util::FaultInjector::Instance().Reset();

  // Every failed async move was observed (counted), none silently dropped,
  // and the accounting invariant survived the error path.
  EXPECT_GT((*engine)->prefetch_move_failures(), warmup_failures);
  EXPECT_EQ((*engine)->prefetch_hits() + (*engine)->prefetch_waits(),
            (*engine)->scheduled_uses());
  EXPECT_EQ((*engine)->steps_completed(), 8);

  // And the engine recovers fully once the fault clears.
  const double loss = TrainThroughEngine(engine->get(), model, 30, &rng);
  EXPECT_LT(loss, 1.5);
}

TEST(EngineTest, ModelLargerThanGpuStillTrainsViaPaging) {
  // Each layer is ~8 KiB (fp16); the GPU tier holds only 2 pages of 4 KiB,
  // so layers must rotate through it.
  EngineOptions options;
  options.memory.page_bytes = 4 * 1024;
  options.memory.gpu_capacity_bytes = 3 * 4 * 1024;
  options.memory.cpu_capacity_bytes = 16ull << 20;
  options.adam.learning_rate = 3e-3;
  auto engine = Engine::Create(options);
  ASSERT_TRUE(engine.ok());
  train::MlpModel model({{16, 48, 48, 4}});
  util::Rng rng(13);
  for (int l = 0; l < model.num_layers(); ++l) {
    ASSERT_TRUE(
        (*engine)->RegisterLayer(model.InitLayerParams(l, &rng)).ok());
  }
  const double final_loss = TrainThroughEngine(engine->get(), model, 40, &rng);
  EXPECT_LT(final_loss, 1.5);
  // The schedule could not keep everything resident.
  const mem::MoveStats up = (*engine)->memory()->move_stats(
      mem::DeviceKind::kCpu, mem::DeviceKind::kGpu);
  EXPECT_GT(up.moves, 40u);
}

}  // namespace
}  // namespace angelptm::core
