#include "core/lockfree_updater.h"

#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/adam.h"
#include "util/fault_injector.h"

namespace angelptm::core {
namespace {

class LockFreeUpdaterTest : public ::testing::Test {
 protected:
  LockFreeUpdaterTest() : memory_(MakeOptions()), allocator_(&memory_) {}

  static mem::HierarchicalMemoryOptions MakeOptions() {
    mem::HierarchicalMemoryOptions o;
    o.page_bytes = 16 * 1024;
    o.gpu_capacity_bytes = 4ull << 20;
    o.cpu_capacity_bytes = 32ull << 20;
    o.ssd_capacity_bytes = 32ull << 20;
    o.ssd_path = "/tmp/angelptm_lfu_test_" + std::to_string(::getpid()) +
                 "_" + std::to_string(counter_++) + ".bin";
    return o;
  }

  static LockFreeUpdater::Options UpdaterOptions(
      mem::DeviceKind master = mem::DeviceKind::kCpu) {
    LockFreeUpdater::Options options;
    options.optimizer.learning_rate = 0.1;
    options.master_device = master;
    return options;
  }

  static int counter_;
  mem::HierarchicalMemory memory_;
  Allocator allocator_;
};

int LockFreeUpdaterTest::counter_ = 0;

TEST_F(LockFreeUpdaterTest, InitialParamsVisibleThroughBuffers) {
  LockFreeUpdater updater(&allocator_, UpdaterOptions());
  const std::vector<float> init = {1.0f, 2.0f, 3.0f};
  auto layer = updater.AddLayer(init);
  ASSERT_TRUE(layer.ok());
  EXPECT_EQ(*layer, 0);
  std::vector<float> fetched;
  ASSERT_TRUE(updater.FetchParams(0, &fetched).ok());
  EXPECT_EQ(fetched, init);
  std::vector<float> master;
  ASSERT_TRUE(updater.ReadMasterParams(0, &master).ok());
  EXPECT_EQ(master, init);
}

TEST_F(LockFreeUpdaterTest, SynchronousUpdateMatchesReferenceAdam) {
  LockFreeUpdater updater(&allocator_, UpdaterOptions());
  const std::vector<float> init = {1.0f, -2.0f, 0.5f, 4.0f};
  ASSERT_TRUE(updater.AddLayer(init).ok());

  const std::vector<float> grads = {0.5f, -1.0f, 0.25f, 2.0f};
  ASSERT_TRUE(updater.OffloadGrads(0, grads).ok());
  ASSERT_TRUE(updater.UpdateOnce().ok());

  // Reference Adam on plain arrays.
  AdamConfig config;
  config.learning_rate = 0.1;
  std::vector<float> p = init, m(4, 0.0f), v(4, 0.0f);
  AdamUpdate(config, p.data(), m.data(), v.data(), grads.data(), 4, 1);

  std::vector<float> master;
  ASSERT_TRUE(updater.ReadMasterParams(0, &master).ok());
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(master[i], p[i], 1e-5) << "param " << i;
  }
  // The fp16 buffer also refreshed (within fp16 precision).
  std::vector<float> fetched;
  ASSERT_TRUE(updater.FetchParams(0, &fetched).ok());
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(fetched[i], p[i], 5e-3) << "buffered " << i;
  }
  const LockFreeUpdater::Stats stats = updater.Snapshot();
  EXPECT_EQ(stats.updates_applied, 1u);
  EXPECT_EQ(stats.pending_grad_batches, 0u);
  EXPECT_EQ(stats.grad_batches_offloaded, 1u);
}

TEST_F(LockFreeUpdaterTest, AccumulatedBatchesAreAveraged) {
  LockFreeUpdater updater(&allocator_, UpdaterOptions());
  ASSERT_TRUE(updater.AddLayer({0.0f}).ok());
  ASSERT_TRUE(updater.OffloadGrads(0, {1.0f}).ok());
  ASSERT_TRUE(updater.OffloadGrads(0, {3.0f}).ok());
  ASSERT_TRUE(updater.UpdateOnce().ok());

  // Equivalent single update with the averaged gradient 2.0.
  AdamConfig config;
  config.learning_rate = 0.1;
  std::vector<float> p = {0.0f}, m = {0.0f}, v = {0.0f};
  const std::vector<float> avg = {2.0f};
  AdamUpdate(config, p.data(), m.data(), v.data(), avg.data(), 1, 1);

  std::vector<float> master;
  ASSERT_TRUE(updater.ReadMasterParams(0, &master).ok());
  EXPECT_NEAR(master[0], p[0], 1e-4);
  const LockFreeUpdater::Stats stats = updater.Snapshot();
  EXPECT_EQ(stats.updates_applied, 1u);
  // Both batches folded into the one update: staleness of 2.
  EXPECT_EQ(stats.staleness.count(), 1u);
}

TEST_F(LockFreeUpdaterTest, NoGradientsMeansNoUpdate) {
  LockFreeUpdater updater(&allocator_, UpdaterOptions());
  ASSERT_TRUE(updater.AddLayer({1.0f, 2.0f}).ok());
  ASSERT_TRUE(updater.UpdateOnce().ok());
  EXPECT_EQ(updater.Snapshot().updates_applied, 0u);
}

TEST_F(LockFreeUpdaterTest, AsyncThreadsApplyUpdates) {
  LockFreeUpdater updater(&allocator_, UpdaterOptions());
  const std::vector<float> init(64, 1.0f);
  ASSERT_TRUE(updater.AddLayer(init).ok());
  ASSERT_TRUE(updater.AddLayer(init).ok());
  updater.Start();
  EXPECT_TRUE(updater.running());
  for (int step = 0; step < 20; ++step) {
    ASSERT_TRUE(updater.OffloadGrads(0, std::vector<float>(64, 0.1f)).ok());
    ASSERT_TRUE(updater.OffloadGrads(1, std::vector<float>(64, -0.1f)).ok());
  }
  ASSERT_TRUE(updater.DrainUpdates().ok());
  updater.Stop();
  EXPECT_FALSE(updater.running());
  const LockFreeUpdater::Stats stats = updater.Snapshot();
  EXPECT_EQ(stats.pending_grad_batches, 0u);
  EXPECT_GT(stats.updates_applied, 0u);
  EXPECT_EQ(stats.grad_batches_offloaded, 40u);
  EXPECT_EQ(stats.grad_batches_applied, 40u);
  std::vector<float> p0, p1;
  ASSERT_TRUE(updater.ReadMasterParams(0, &p0).ok());
  ASSERT_TRUE(updater.ReadMasterParams(1, &p1).ok());
  EXPECT_LT(p0[0], 1.0f);  // Positive grads decreased the parameter.
  EXPECT_GT(p1[0], 1.0f);  // Negative grads increased it.
}

TEST_F(LockFreeUpdaterTest, ComputeNeverBlocksOnUpdater) {
  // Offloading with threads running must return quickly even while the
  // updater is busy — the defining property of the mechanism. (The default
  // staleness valve may briefly pace the loop, but never serializes it
  // behind one update per batch.)
  LockFreeUpdater updater(&allocator_, UpdaterOptions());
  ASSERT_TRUE(updater.AddLayer(std::vector<float>(4096, 0.5f)).ok());
  updater.Start();
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        updater.OffloadGrads(0, std::vector<float>(4096, 0.01f)).ok());
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(elapsed, 2.0);
  ASSERT_TRUE(updater.DrainUpdates().ok());
  updater.Stop();
}

TEST_F(LockFreeUpdaterTest, SsdMasterStatesRoundTrip) {
  LockFreeUpdater updater(&allocator_,
                          UpdaterOptions(mem::DeviceKind::kSsd));
  const std::vector<float> init = {1.0f, 2.0f, 3.0f, 4.0f};
  ASSERT_TRUE(updater.AddLayer(init).ok());
  EXPECT_GT(memory_.ssd()->Snapshot().bytes_written, 0u);

  ASSERT_TRUE(updater.OffloadGrads(0, {1.0f, 1.0f, 1.0f, 1.0f}).ok());
  ASSERT_TRUE(updater.UpdateOnce().ok());
  std::vector<float> master;
  ASSERT_TRUE(updater.ReadMasterParams(0, &master).ok());
  for (int i = 0; i < 4; ++i) EXPECT_LT(master[i], init[i]);
  EXPECT_GT(memory_.ssd()->Snapshot().bytes_read, 0u);
}

TEST_F(LockFreeUpdaterTest, InputValidation) {
  LockFreeUpdater updater(&allocator_, UpdaterOptions());
  EXPECT_TRUE(updater.AddLayer({}).status().IsInvalidArgument());
  ASSERT_TRUE(updater.AddLayer({1.0f, 2.0f}).ok());
  std::vector<float> out;
  EXPECT_TRUE(updater.FetchParams(5, &out).IsInvalidArgument());
  EXPECT_TRUE(updater.OffloadGrads(0, {1.0f}).IsInvalidArgument());
  EXPECT_TRUE(updater.OffloadGrads(-1, {1.0f}).IsInvalidArgument());
}

TEST_F(LockFreeUpdaterTest, UpdateOnceRejectedWhileRunning) {
  LockFreeUpdater updater(&allocator_, UpdaterOptions());
  ASSERT_TRUE(updater.AddLayer({1.0f}).ok());
  updater.Start();
  EXPECT_EQ(updater.UpdateOnce().code(),
            util::StatusCode::kFailedPrecondition);
  updater.Stop();
}

TEST_F(LockFreeUpdaterTest, StalenessValveBoundsPerLayerBacklog) {
  // With the valve at 4, a compute loop spamming one layer can never get
  // more than 4 batches ahead of the updating thread, so no update ever
  // folds more than 4 batches (the staleness bound is a hard bound, not a
  // hint). A single offloading thread makes this deterministic: the valve
  // admits an offload only when in-flight < 4.
  auto options = UpdaterOptions();
  options.max_pending_batches_per_layer = 4;
  LockFreeUpdater updater(&allocator_, options);
  ASSERT_TRUE(updater.AddLayer(std::vector<float>(256, 1.0f)).ok());
  updater.Start();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(updater.OffloadGrads(0, std::vector<float>(256, 0.01f)).ok());
  }
  ASSERT_TRUE(updater.DrainUpdates().ok());
  updater.Stop();
  const LockFreeUpdater::Stats stats = updater.Snapshot();
  EXPECT_EQ(stats.grad_batches_applied, 100u);
  EXPECT_LE(stats.staleness.Max(), 4u);
}

TEST_F(LockFreeUpdaterTest, ValveDisabledAllowsUnboundedBacklog) {
  // Bound 0 switches the valve off: offloads never wait, whatever the
  // backlog (the paper's original never-blocking compute contract).
  auto options = UpdaterOptions();
  options.max_pending_batches_per_layer = 0;
  LockFreeUpdater updater(&allocator_, options);
  ASSERT_TRUE(updater.AddLayer(std::vector<float>(16, 1.0f)).ok());
  updater.Start();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(updater.OffloadGrads(0, std::vector<float>(16, 0.01f)).ok());
  }
  ASSERT_TRUE(updater.DrainUpdates().ok());
  updater.Stop();
  const LockFreeUpdater::Stats stats = updater.Snapshot();
  EXPECT_EQ(stats.grad_batches_applied, 50u);
  EXPECT_EQ(stats.backpressure_waits, 0u);
}

TEST_F(LockFreeUpdaterTest, StartStopIdempotent) {
  LockFreeUpdater updater(&allocator_, UpdaterOptions());
  ASSERT_TRUE(updater.AddLayer({1.0f}).ok());
  updater.Start();
  updater.Start();
  updater.Stop();
  updater.Stop();
  SUCCEED();
}

/// Failure semantics: injected faults must poison the updater and surface
/// through status()/DrainUpdates instead of hanging or silently diverging.
class LockFreeUpdaterFaultTest : public LockFreeUpdaterTest {
 protected:
  void SetUp() override { util::FaultInjector::Instance().Reset(); }
  void TearDown() override { util::FaultInjector::Instance().Reset(); }

  static void ArmPermanent(const char* site) {
    util::FaultRule rule;
    rule.permanent = true;
    util::FaultInjector::Instance().Arm(site, rule);
  }
};

TEST_F(LockFreeUpdaterFaultTest, SsdWriteFailurePoisonsAsyncUpdater) {
  LockFreeUpdater updater(&allocator_,
                          UpdaterOptions(mem::DeviceKind::kSsd));
  // Setup writes (master migration to SSD) happen before the fault is armed.
  ASSERT_TRUE(updater.AddLayer(std::vector<float>(8, 1.0f)).ok());
  updater.Start();
  ArmPermanent("ssd.pwrite");  // Every master write-back now fails.

  // The offload itself never blocks; the failure surfaces asynchronously.
  ASSERT_TRUE(updater.OffloadGrads(0, std::vector<float>(8, 0.5f)).ok());
  const util::Status drained =
      updater.DrainUpdates(std::chrono::milliseconds(30000));
  EXPECT_TRUE(drained.IsIoError()) << drained;
  EXPECT_TRUE(updater.status().IsIoError());

  // Poisoning is terminal: the compute-side interface fails fast.
  EXPECT_TRUE(
      updater.OffloadGrads(0, std::vector<float>(8, 0.5f)).IsIoError());
  std::vector<float> fetched;
  EXPECT_TRUE(updater.FetchParams(0, &fetched).IsIoError());
  EXPECT_TRUE(updater.UpdateOnce().IsIoError());
  updater.Stop();
}

TEST_F(LockFreeUpdaterFaultTest, BufferAccumulateFailurePoisons) {
  LockFreeUpdater updater(&allocator_, UpdaterOptions());
  ASSERT_TRUE(updater.AddLayer({1.0f, 2.0f}).ok());
  ArmPermanent("updater.buffer_accumulate");
  updater.Start();
  ASSERT_TRUE(updater.OffloadGrads(0, {0.1f, 0.1f}).ok());
  EXPECT_TRUE(
      updater.DrainUpdates(std::chrono::milliseconds(30000)).IsIoError());
  updater.Stop();
  // The lost batch was never marked pending, so no zero-gradient update ran
  // — the regression where a failed accumulate still bumped pending_batches.
  EXPECT_EQ(updater.Snapshot().updates_applied, 0u);
}

TEST_F(LockFreeUpdaterFaultTest, BufferInstallFailurePoisons) {
  LockFreeUpdater updater(&allocator_, UpdaterOptions());
  ASSERT_TRUE(updater.AddLayer({1.0f}).ok());
  ArmPermanent("updater.buffer_install");
  updater.Start();
  ASSERT_TRUE(updater.OffloadGrads(0, {0.5f}).ok());
  // The gradient may count as applied before the install task fails, so
  // DrainUpdates can legitimately return OK here; the poisoned state itself
  // is what must become visible promptly.
  (void)updater.DrainUpdates(std::chrono::milliseconds(30000));
  const auto poll_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (updater.status().ok() &&
         std::chrono::steady_clock::now() < poll_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(updater.status().IsIoError());
  updater.Stop();
  std::vector<float> fetched;
  EXPECT_TRUE(updater.FetchParams(0, &fetched).IsIoError());
}

TEST_F(LockFreeUpdaterFaultTest, PoisonReleasesValveBlockedOffload) {
  // A dead updating thread must never wedge a compute thread waiting at
  // the staleness valve. The armed accumulate fault poisons the updater
  // while the first batch is still counted in flight, so the second
  // offload either fails fast on the published poison or blocks at the
  // bound-1 valve until Poison's wakeup releases it — both within the
  // test's lifetime, neither a hang.
  auto options = UpdaterOptions();
  options.max_pending_batches_per_layer = 1;
  LockFreeUpdater updater(&allocator_, options);
  ASSERT_TRUE(updater.AddLayer({1.0f, 2.0f}).ok());
  ArmPermanent("updater.buffer_accumulate");
  updater.Start();
  ASSERT_TRUE(updater.OffloadGrads(0, {0.1f, 0.1f}).ok());
  const auto poll_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  util::Status second = util::Status::OK();
  while (second.ok() && std::chrono::steady_clock::now() < poll_deadline) {
    second = updater.OffloadGrads(0, {0.1f, 0.1f});
  }
  EXPECT_TRUE(second.IsIoError()) << second;
  updater.Stop();
}

TEST_F(LockFreeUpdaterFaultTest, DrainDeadlineExceededWithoutProgress) {
  LockFreeUpdater updater(&allocator_, UpdaterOptions());
  ASSERT_TRUE(updater.AddLayer({1.0f}).ok());
  ASSERT_TRUE(updater.OffloadGrads(0, {1.0f}).ok());
  // Threads are not running and the deadline is already past, so the one
  // pending batch cannot drain in time.
  const util::Status drained =
      updater.DrainUpdates(std::chrono::milliseconds(0));
  EXPECT_TRUE(drained.IsDeadlineExceeded()) << drained;
  EXPECT_NE(drained.message().find("1 gradient batches"), std::string::npos);

  // DeadlineExceeded is not terminal: a later drain with time to spare
  // applies the update inline and succeeds.
  EXPECT_TRUE(updater.status().ok());
  EXPECT_TRUE(updater.DrainUpdates().ok());
  const LockFreeUpdater::Stats stats = updater.Snapshot();
  EXPECT_EQ(stats.updates_applied, 1u);
  EXPECT_EQ(stats.pending_grad_batches, 0u);
}

}  // namespace
}  // namespace angelptm::core
