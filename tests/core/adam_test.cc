#include "core/adam.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace angelptm::core {
namespace {

TEST(AdamTest, FirstStepMovesByLearningRate) {
  // With bias correction, step 1 moves each parameter by ~lr * sign(grad).
  AdamConfig config;
  config.learning_rate = 0.01;
  std::vector<float> p = {1.0f, -1.0f}, m = {0, 0}, v = {0, 0};
  const std::vector<float> g = {0.5f, -2.0f};
  AdamUpdate(config, p.data(), m.data(), v.data(), g.data(), 2, 1);
  EXPECT_NEAR(p[0], 1.0 - 0.01, 1e-4);
  EXPECT_NEAR(p[1], -1.0 + 0.01, 1e-4);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize f(x) = (x - 3)^2.
  AdamConfig config;
  config.learning_rate = 0.1;
  std::vector<float> p = {0.0f}, m = {0.0f}, v = {0.0f};
  for (int step = 1; step <= 500; ++step) {
    const std::vector<float> g = {2.0f * (p[0] - 3.0f)};
    AdamUpdate(config, p.data(), m.data(), v.data(), g.data(), 1, step);
  }
  EXPECT_NEAR(p[0], 3.0f, 0.05);
}

TEST(AdamTest, ZeroGradLeavesParamsAlmostStill) {
  AdamConfig config;
  std::vector<float> p = {5.0f}, m = {0.0f}, v = {0.0f};
  const std::vector<float> g = {0.0f};
  AdamUpdate(config, p.data(), m.data(), v.data(), g.data(), 1, 1);
  EXPECT_NEAR(p[0], 5.0f, 1e-5);
}

TEST(AdamTest, WeightDecayPullsTowardZero) {
  AdamConfig config;
  config.learning_rate = 0.1;
  config.weight_decay = 0.1;
  std::vector<float> p = {10.0f}, m = {0.0f}, v = {0.0f};
  const std::vector<float> g = {0.0f};
  for (int step = 1; step <= 50; ++step) {
    AdamUpdate(config, p.data(), m.data(), v.data(), g.data(), 1, step);
  }
  EXPECT_LT(p[0], 10.0f);
}

TEST(AdamTest, MomentsTrackGradientStatistics) {
  AdamConfig config;
  std::vector<float> p = {0.0f}, m = {0.0f}, v = {0.0f};
  const std::vector<float> g = {2.0f};
  AdamUpdate(config, p.data(), m.data(), v.data(), g.data(), 1, 1);
  EXPECT_NEAR(m[0], (1 - config.beta1) * 2.0, 1e-6);
  EXPECT_NEAR(v[0], (1 - config.beta2) * 4.0, 1e-6);
}

}  // namespace
}  // namespace angelptm::core
