#include "core/optimizer/optimizer.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/adam.h"
#include "util/parallel_for.h"
#include "util/random.h"

namespace angelptm::core {
namespace {

/// One optimizer state: params plus the rule's declared slots, with helpers
/// to run Update through the public interface.
struct RuleState {
  std::vector<float> params;
  std::vector<std::vector<float>> slots;

  static RuleState Init(const Optimizer& rule, std::vector<float> params) {
    RuleState state;
    state.params = std::move(params);
    for (const SlotSpec& spec : rule.SlotLayout(state.params.size())) {
      state.slots.emplace_back(spec.count, 0.0f);
    }
    return state;
  }

  util::Status Step(const Optimizer& rule, const std::vector<float>& grads,
                    long step) {
    std::vector<SlotView> views;
    for (std::vector<float>& slot : slots) {
      views.push_back({slot.data(), slot.size()});
    }
    return rule.Update(params.data(), grads.data(), params.size(), views,
                       step);
  }
};

std::vector<float> RandomVec(util::Rng* rng, size_t n, double scale = 1.0) {
  std::vector<float> out(n);
  for (float& x : out) x = float(rng->NextGaussian() * scale);
  return out;
}

class OptimizerTest : public ::testing::Test {
 protected:
  void TearDown() override { util::SetComputePoolOverride(nullptr); }

  static std::unique_ptr<Optimizer> Make(const std::string& rule) {
    OptimizerConfig config;
    config.rule = rule;
    config.learning_rate = 0.05;
    config.weight_decay = 0.01;
    auto optimizer = Optimizer::Create(config);
    EXPECT_TRUE(optimizer.ok()) << optimizer.status();
    return std::move(optimizer).value();
  }

  /// Runs `steps` updates at every pool width and requires the final state
  /// to be bitwise identical — the determinism contract of optimizer.h.
  static void ExpectThreadCountInvariant(const Optimizer& rule, size_t count,
                                         int steps) {
    util::Rng rng(911);
    const std::vector<float> init = RandomVec(&rng, count);
    std::vector<std::vector<float>> grads;
    for (int s = 0; s < steps; ++s) grads.push_back(RandomVec(&rng, count));

    std::vector<RuleState> results;
    for (const size_t threads : {size_t(1), size_t(4), size_t(8)}) {
      util::ThreadPool pool(threads);
      util::SetComputePoolOverride(&pool);
      RuleState state = RuleState::Init(rule, init);
      for (int s = 0; s < steps; ++s) {
        ASSERT_TRUE(state.Step(rule, grads[s], s + 1).ok());
      }
      util::SetComputePoolOverride(nullptr);
      results.push_back(std::move(state));
    }
    for (size_t i = 1; i < results.size(); ++i) {
      EXPECT_EQ(results[i].params, results[0].params)
          << rule.name() << " diverged between thread counts";
      ASSERT_EQ(results[i].slots.size(), results[0].slots.size());
      for (size_t s = 0; s < results[i].slots.size(); ++s) {
        EXPECT_EQ(results[i].slots[s], results[0].slots[s])
            << rule.name() << " slot " << s
            << " diverged between thread counts";
      }
    }
  }
};

TEST_F(OptimizerTest, RegistryListsAllBuiltinRules) {
  const std::vector<std::string> rules = RegisteredOptimizers();
  for (const char* want : {"adam", "sgdm", "lamb", "adafactor"}) {
    EXPECT_NE(std::find(rules.begin(), rules.end(), want), rules.end())
        << want << " missing from the registry";
  }
}

TEST_F(OptimizerTest, CreateRejectsUnknownRuleAndBadConfig) {
  OptimizerConfig config;
  config.rule = "newton";
  const auto unknown = Optimizer::Create(config);
  ASSERT_TRUE(unknown.status().IsNotFound()) << unknown.status();
  // The error teaches the operator what exists.
  EXPECT_NE(unknown.status().message().find("adam"), std::string::npos);

  config.rule = "adam";
  config.learning_rate = 0.0;
  EXPECT_TRUE(Optimizer::Create(config).status().IsInvalidArgument());
}

TEST_F(OptimizerTest, SlotLayoutsMatchTheRules) {
  EXPECT_EQ(Make("adam")->SlotLayout(100).size(), 2u);
  EXPECT_EQ(Make("sgdm")->SlotLayout(100).size(), 1u);
  EXPECT_EQ(Make("lamb")->SlotLayout(100).size(), 2u);

  OptimizerConfig config;
  config.rule = "adafactor";
  config.adafactor_cols = 16;
  auto adafactor = Optimizer::Create(config);
  ASSERT_TRUE(adafactor.ok());
  const std::vector<SlotSpec> layout = (*adafactor)->SlotLayout(100);
  ASSERT_EQ(layout.size(), 2u);
  EXPECT_EQ(layout[0].name, "row");
  EXPECT_EQ(layout[0].count, 7u);  // ceil(100 / 16)
  EXPECT_EQ(layout[1].name, "col");
  EXPECT_EQ(layout[1].count, 16u);
  // Factored state is materially smaller than the parameters themselves.
  EXPECT_LT(layout[0].count + layout[1].count, 100u);
}

TEST_F(OptimizerTest, UpdateRejectsMismatchedSlots) {
  auto adam = Make("adam");
  std::vector<float> p(8, 1.0f), g(8, 0.1f), m(8, 0.0f);
  std::vector<SlotView> too_few = {{m.data(), m.size()}};
  EXPECT_TRUE(
      adam->Update(p.data(), g.data(), 8, too_few, 1).IsInvalidArgument());
}

TEST_F(OptimizerTest, AdamMatchesTheExistingKernelBitwise) {
  // The redesigned interface must not perturb the historic Adam path: the
  // wrapped rule and a direct AdamUpdate call agree bit for bit.
  OptimizerConfig config;
  config.learning_rate = 0.01;
  config.weight_decay = 0.02;
  auto adam = Optimizer::Create(config);
  ASSERT_TRUE(adam.ok());

  util::Rng rng(5);
  const size_t count = 10000;  // Spans several SIMD blocks + a tail.
  RuleState state = RuleState::Init(**adam, RandomVec(&rng, count));
  AdamConfig reference_config;
  reference_config.learning_rate = 0.01;
  reference_config.weight_decay = 0.02;
  std::vector<float> ref_p = state.params, ref_m(count, 0.0f),
                     ref_v(count, 0.0f);
  for (int step = 1; step <= 5; ++step) {
    const std::vector<float> grads = RandomVec(&rng, count);
    ASSERT_TRUE(state.Step(**adam, grads, step).ok());
    AdamUpdate(reference_config, ref_p.data(), ref_m.data(), ref_v.data(),
               grads.data(), count, step);
  }
  EXPECT_EQ(state.params, ref_p);
  EXPECT_EQ(state.slots[0], ref_m);
  EXPECT_EQ(state.slots[1], ref_v);
}

TEST_F(OptimizerTest, AdamBitwiseIdenticalAcrossThreadCounts) {
  ExpectThreadCountInvariant(*Make("adam"), 20000, 4);
}

TEST_F(OptimizerTest, SgdmMatchesNaiveReference) {
  auto sgdm = Make("sgdm");
  util::Rng rng(7);
  const size_t count = 5000;
  RuleState state = RuleState::Init(*sgdm, RandomVec(&rng, count));
  std::vector<float> ref_p = state.params, ref_m(count, 0.0f);
  for (int step = 1; step <= 4; ++step) {
    const std::vector<float> grads = RandomVec(&rng, count);
    ASSERT_TRUE(state.Step(*sgdm, grads, step).ok());
    for (size_t i = 0; i < count; ++i) {
      double g = grads[i] + 0.01 * ref_p[i];  // weight_decay = 0.01
      const double mi = 0.9 * ref_m[i] + g;   // beta1 = 0.9
      ref_m[i] = float(mi);
      ref_p[i] -= float(0.05 * mi);           // learning_rate = 0.05
    }
  }
  EXPECT_EQ(state.params, ref_p);
  EXPECT_EQ(state.slots[0], ref_m);
}

TEST_F(OptimizerTest, SgdmBitwiseIdenticalAcrossThreadCounts) {
  ExpectThreadCountInvariant(*Make("sgdm"), 20000, 4);
}

TEST_F(OptimizerTest, LambMatchesNaiveReference) {
  auto lamb = Make("lamb");
  util::Rng rng(11);
  const size_t count = 3000;
  RuleState state = RuleState::Init(*lamb, RandomVec(&rng, count));
  std::vector<float> ref_p = state.params;
  std::vector<double> ref_m(count, 0.0), ref_v(count, 0.0);
  for (int step = 1; step <= 4; ++step) {
    const std::vector<float> grads = RandomVec(&rng, count);
    ASSERT_TRUE(state.Step(*lamb, grads, step).ok());

    // Naive double-precision LAMB.
    const double bc1 = 1.0 - std::pow(0.9, step);
    const double bc2 = 1.0 - std::pow(0.999, step);
    std::vector<double> r(count);
    double p_norm_sq = 0.0, r_norm_sq = 0.0;
    for (size_t i = 0; i < count; ++i) {
      const double g = grads[i];
      ref_m[i] = 0.9 * ref_m[i] + 0.1 * g;
      ref_v[i] = 0.999 * ref_v[i] + 0.001 * g * g;
      r[i] = (ref_m[i] / bc1) / (std::sqrt(ref_v[i] / bc2) + 1e-8) +
             0.01 * ref_p[i];
      p_norm_sq += double(ref_p[i]) * double(ref_p[i]);
      r_norm_sq += r[i] * r[i];
    }
    double trust = 1.0;
    if (p_norm_sq > 0.0 && r_norm_sq > 0.0) {
      trust = std::min(std::sqrt(p_norm_sq) / std::sqrt(r_norm_sq), 10.0);
    }
    for (size_t i = 0; i < count; ++i) {
      ref_p[i] -= float(0.05 * trust * r[i]);
    }
  }
  for (size_t i = 0; i < count; ++i) {
    ASSERT_NEAR(state.params[i], ref_p[i], 1e-4) << "param " << i;
  }
}

TEST_F(OptimizerTest, LambTrustRatioScalesTheStep) {
  // Large params + tiny gradients => trust ratio > 1 => a LAMB step larger
  // than the plain Adam-style step (up to the clamp).
  auto lamb = Make("lamb");
  const size_t count = 64;
  RuleState big = RuleState::Init(*lamb, std::vector<float>(count, 100.0f));
  RuleState zero = RuleState::Init(*lamb, std::vector<float>(count, 0.0f));
  const std::vector<float> grads(count, 1e-3f);
  ASSERT_TRUE(big.Step(*lamb, grads, 1).ok());
  ASSERT_TRUE(zero.Step(*lamb, grads, 1).ok());
  // All-zero params have p_norm == 0: trust falls back to exactly 1.
  const double zero_step = std::fabs(0.0f - zero.params[0]);
  const double big_step = std::fabs(100.0f - big.params[0]);
  EXPECT_GT(big_step, zero_step);
}

TEST_F(OptimizerTest, LambBitwiseIdenticalAcrossThreadCounts) {
  ExpectThreadCountInvariant(*Make("lamb"), 20000, 4);
}

TEST_F(OptimizerTest, AdafactorMatchesNaiveReference) {
  OptimizerConfig config;
  config.rule = "adafactor";
  config.learning_rate = 0.05;
  config.weight_decay = 0.01;
  config.adafactor_cols = 32;
  auto adafactor = Optimizer::Create(config);
  ASSERT_TRUE(adafactor.ok());

  util::Rng rng(13);
  const size_t count = 1000;  // Ragged last row: 1000 = 31*32 + 8.
  const size_t cols = 32, rows = (count + cols - 1) / cols;
  RuleState state = RuleState::Init(**adafactor, RandomVec(&rng, count));
  std::vector<float> ref_p = state.params;
  std::vector<double> ref_row(rows, 0.0), ref_col(cols, 0.0);
  for (int step = 1; step <= 4; ++step) {
    const std::vector<float> grads = RandomVec(&rng, count);
    ASSERT_TRUE(state.Step(**adafactor, grads, step).ok());

    // Naive double-precision Adafactor over the ragged grid, mirroring the
    // float storage of the running statistics.
    const double bc2 = 1.0 - std::pow(0.999, step);
    std::vector<double> row_sum(rows, 0.0), col_sum(cols, 0.0);
    for (size_t k = 0; k < count; ++k) {
      const double g2 = double(grads[k]) * double(grads[k]) + 1e-30;
      row_sum[k / cols] += g2;
      col_sum[k % cols] += g2;
    }
    double row_total = 0.0;
    for (size_t i = 0; i < rows; ++i) {
      ref_row[i] = float(0.999 * ref_row[i] + 0.001 * row_sum[i]);
      row_total += ref_row[i] / bc2;
    }
    for (size_t j = 0; j < cols; ++j) {
      ref_col[j] = float(0.999 * ref_col[j] + 0.001 * col_sum[j]);
    }
    for (size_t k = 0; k < count; ++k) {
      const double v_hat = (ref_row[k / cols] / bc2) *
                           (ref_col[k % cols] / bc2) / row_total;
      double u = double(grads[k]) / (std::sqrt(v_hat) + 1e-8);
      u += 0.01 * ref_p[k];
      ref_p[k] -= float(0.05 * u);
    }
  }
  for (size_t i = 0; i < count; ++i) {
    ASSERT_NEAR(state.params[i], ref_p[i], 1e-4) << "param " << i;
  }
}

TEST_F(OptimizerTest, AdafactorBitwiseIdenticalAcrossThreadCounts) {
  OptimizerConfig config;
  config.rule = "adafactor";
  config.learning_rate = 0.05;
  config.adafactor_cols = 128;
  auto adafactor = Optimizer::Create(config);
  ASSERT_TRUE(adafactor.ok());
  ExpectThreadCountInvariant(**adafactor, 20000, 4);
}

TEST_F(OptimizerTest, ResolveLegacyAdamOverridesOnlyChangedFields) {
  OptimizerConfig config;
  config.rule = "lamb";
  config.learning_rate = 0.5;
  config.beta1 = 0.8;

  AdamConfig legacy;  // All defaults: nothing overrides.
  OptimizerConfig resolved = ResolveLegacyAdam(config, legacy);
  EXPECT_EQ(resolved.rule, "lamb");
  EXPECT_EQ(resolved.learning_rate, 0.5);
  EXPECT_EQ(resolved.beta1, 0.8);

  legacy.learning_rate = 3e-3;  // Set away from the default: overrides.
  resolved = ResolveLegacyAdam(config, legacy);
  EXPECT_EQ(resolved.learning_rate, 3e-3);
  EXPECT_EQ(resolved.beta1, 0.8);  // Untouched legacy field: kept.
}

}  // namespace
}  // namespace angelptm::core
