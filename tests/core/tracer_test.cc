#include "core/tracer.h"

#include <gtest/gtest.h>

namespace angelptm::core {
namespace {

TEST(TracerTest, RecordsFirstAndLastAccess) {
  Tracer tracer;
  EXPECT_EQ(tracer.BeginOp("embed"), 0);
  ASSERT_TRUE(tracer.RecordAccess(/*tensor_id=*/10, /*bytes=*/1024).ok());
  EXPECT_EQ(tracer.BeginOp("layer0"), 1);
  ASSERT_TRUE(tracer.RecordAccess(10, 1024).ok());
  ASSERT_TRUE(tracer.RecordAccess(11, 2048).ok());
  EXPECT_EQ(tracer.BeginOp("layer1"), 2);
  ASSERT_TRUE(tracer.RecordAccess(10, 1024).ok());

  const auto traces = tracer.Traces();
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].tensor_id, 10u);
  EXPECT_EQ(traces[0].first_id, 0);
  EXPECT_EQ(traces[0].end_id, 2);
  EXPECT_EQ(traces[0].LifetimeSpan(), 2);
  EXPECT_EQ(traces[1].tensor_id, 11u);
  EXPECT_EQ(traces[1].first_id, 1);
  EXPECT_EQ(traces[1].end_id, 1);
  EXPECT_EQ(traces[1].LifetimeSpan(), 0);
}

TEST(TracerTest, AccessBeforeAnyOpFails) {
  Tracer tracer;
  EXPECT_EQ(tracer.RecordAccess(1, 8).code(),
            util::StatusCode::kFailedPrecondition);
}

TEST(TracerTest, ProduceTimesAttach) {
  Tracer tracer;
  tracer.BeginOp("op");
  ASSERT_TRUE(tracer.RecordAccess(5, 64).ok());
  tracer.RecordProduceTime(5, /*cpu_time=*/0.5, /*gpu_time=*/0.01);
  const auto traces = tracer.Traces();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_DOUBLE_EQ(traces[0].cpu_time, 0.5);
  EXPECT_DOUBLE_EQ(traces[0].gpu_time, 0.01);
}

TEST(TracerTest, TracesSortedByFirstAccess) {
  Tracer tracer;
  tracer.BeginOp("a");
  ASSERT_TRUE(tracer.RecordAccess(100, 1).ok());
  tracer.BeginOp("b");
  ASSERT_TRUE(tracer.RecordAccess(50, 1).ok());
  ASSERT_TRUE(tracer.RecordAccess(51, 1).ok());
  const auto traces = tracer.Traces();
  ASSERT_EQ(traces.size(), 3u);
  EXPECT_EQ(traces[0].tensor_id, 100u);  // first_id 0.
  EXPECT_EQ(traces[1].tensor_id, 50u);   // first_id 1, lower id first.
  EXPECT_EQ(traces[2].tensor_id, 51u);
}

TEST(TracerTest, ResetClearsEverything) {
  Tracer tracer;
  tracer.BeginOp("op");
  ASSERT_TRUE(tracer.RecordAccess(1, 8).ok());
  tracer.Reset();
  EXPECT_EQ(tracer.num_ops(), 0);
  EXPECT_TRUE(tracer.Traces().empty());
  EXPECT_FALSE(tracer.RecordAccess(1, 8).ok());
}

TEST(TracerTest, OpNamesPreserved) {
  Tracer tracer;
  tracer.BeginOp("forward.layer0");
  tracer.BeginOp("forward.layer1");
  ASSERT_EQ(tracer.op_names().size(), 2u);
  EXPECT_EQ(tracer.op_names()[0], "forward.layer0");
  EXPECT_EQ(tracer.op_names()[1], "forward.layer1");
}

}  // namespace
}  // namespace angelptm::core
