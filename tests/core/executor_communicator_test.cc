#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/communicator.h"
#include "core/executor.h"

namespace angelptm::core {
namespace {

TEST(ExecutorTest, StreamRunsInSubmissionOrder) {
  Executor executor;
  std::vector<int> order;
  std::mutex mutex;
  std::vector<std::future<util::Status>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(executor.Submit(mem::DeviceKind::kGpu, [&, i] {
      std::lock_guard<std::mutex> lock(mutex);
      order.push_back(i);
      return util::Status::OK();
    }));
  }
  for (auto& f : futures) ASSERT_TRUE(f.get().ok());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(executor.tasks_completed(mem::DeviceKind::kGpu), 50u);
}

TEST(ExecutorTest, StreamsRunConcurrently) {
  Executor executor;
  std::atomic<bool> cpu_started{false};
  std::atomic<bool> gpu_may_finish{false};
  // The GPU task spins until the CPU task starts: only passes if the two
  // streams genuinely overlap.
  auto gpu = executor.Submit(mem::DeviceKind::kGpu, [&] {
    while (!cpu_started.load()) std::this_thread::yield();
    gpu_may_finish = true;
    return util::Status::OK();
  });
  auto cpu = executor.Submit(mem::DeviceKind::kCpu, [&] {
    cpu_started = true;
    return util::Status::OK();
  });
  ASSERT_TRUE(gpu.get().ok());
  ASSERT_TRUE(cpu.get().ok());
  EXPECT_TRUE(gpu_may_finish.load());
}

TEST(ExecutorTest, FailureStatusPropagates) {
  Executor executor;
  auto future = executor.Submit(mem::DeviceKind::kCpu, [] {
    return util::Status::Internal("boom");
  });
  EXPECT_EQ(future.get().code(), util::StatusCode::kInternal);
}

TEST(ExecutorTest, SynchronizeWaits) {
  Executor executor;
  std::atomic<int> done{0};
  for (int i = 0; i < 10; ++i) {
    executor.Submit(mem::DeviceKind::kGpu, [&] {
      done.fetch_add(1);
      return util::Status::OK();
    });
  }
  executor.SynchronizeAll();
  EXPECT_EQ(done.load(), 10);
}

class CommunicatorTest : public ::testing::TestWithParam<int> {};

TEST_P(CommunicatorTest, AllGatherDeliversEveryShard) {
  const int world = GetParam();
  Communicator comm(world);
  constexpr size_t kCount = 8;
  std::vector<std::vector<float>> recv(world,
                                       std::vector<float>(world * kCount));
  std::vector<std::thread> ranks;
  for (int r = 0; r < world; ++r) {
    ranks.emplace_back([&, r] {
      std::vector<float> send(kCount);
      for (size_t i = 0; i < kCount; ++i) send[i] = float(r * 100 + i);
      ASSERT_TRUE(comm.AllGather(r, send.data(), kCount, recv[r].data()).ok());
    });
  }
  for (auto& t : ranks) t.join();
  for (int r = 0; r < world; ++r) {
    for (int p = 0; p < world; ++p) {
      for (size_t i = 0; i < kCount; ++i) {
        EXPECT_EQ(recv[r][p * kCount + i], float(p * 100 + i));
      }
    }
  }
}

TEST_P(CommunicatorTest, ReduceScatterSumsChunks) {
  const int world = GetParam();
  Communicator comm(world);
  const size_t total = size_t(world) * 4;
  std::vector<std::vector<float>> recv(world, std::vector<float>(4));
  std::vector<std::thread> ranks;
  for (int r = 0; r < world; ++r) {
    ranks.emplace_back([&, r] {
      std::vector<float> send(total);
      for (size_t i = 0; i < total; ++i) send[i] = float(i) + r;
      ASSERT_TRUE(
          comm.ReduceScatter(r, send.data(), total, recv[r].data()).ok());
    });
  }
  for (auto& t : ranks) t.join();
  const float rank_sum = float(world * (world - 1)) / 2;
  for (int r = 0; r < world; ++r) {
    for (size_t i = 0; i < 4; ++i) {
      const float expected = float(r * 4 + i) * world + rank_sum;
      EXPECT_FLOAT_EQ(recv[r][i], expected) << "rank " << r << " idx " << i;
    }
  }
}

TEST_P(CommunicatorTest, AllReduceSumsInPlace) {
  const int world = GetParam();
  Communicator comm(world);
  std::vector<std::vector<float>> data(world, std::vector<float>(6));
  for (int r = 0; r < world; ++r) {
    for (size_t i = 0; i < 6; ++i) data[r][i] = float(r + 1);
  }
  std::vector<std::thread> ranks;
  for (int r = 0; r < world; ++r) {
    ranks.emplace_back([&, r] {
      ASSERT_TRUE(comm.AllReduce(r, data[r].data(), 6).ok());
    });
  }
  for (auto& t : ranks) t.join();
  const float expected = float(world * (world + 1)) / 2;
  for (int r = 0; r < world; ++r) {
    for (size_t i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(data[r][i], expected);
  }
}

TEST_P(CommunicatorTest, AllToAllTransposesChunks) {
  const int world = GetParam();
  Communicator comm(world);
  constexpr size_t kChunk = 3;
  std::vector<std::vector<float>> recv(world,
                                       std::vector<float>(world * kChunk));
  std::vector<std::thread> ranks;
  for (int r = 0; r < world; ++r) {
    ranks.emplace_back([&, r] {
      std::vector<float> send(world * kChunk);
      for (int p = 0; p < world; ++p) {
        for (size_t i = 0; i < kChunk; ++i) {
          send[p * kChunk + i] = float(r * 1000 + p * 10 + i);
        }
      }
      ASSERT_TRUE(comm.AllToAll(r, send.data(), kChunk, recv[r].data()).ok());
    });
  }
  for (auto& t : ranks) t.join();
  for (int r = 0; r < world; ++r) {
    for (int p = 0; p < world; ++p) {
      for (size_t i = 0; i < kChunk; ++i) {
        // Rank r's chunk p came from rank p's chunk r.
        EXPECT_EQ(recv[r][p * kChunk + i], float(p * 1000 + r * 10 + i));
      }
    }
  }
}

TEST_P(CommunicatorTest, RepeatedCollectivesDoNotDeadlock) {
  const int world = GetParam();
  Communicator comm(world);
  std::vector<std::thread> ranks;
  for (int r = 0; r < world; ++r) {
    ranks.emplace_back([&, r] {
      std::vector<float> data(4, float(r));
      for (int iter = 0; iter < 25; ++iter) {
        ASSERT_TRUE(comm.AllReduce(r, data.data(), 4).ok());
        ASSERT_TRUE(comm.Barrier(r).ok());
      }
    });
  }
  for (auto& t : ranks) t.join();
  EXPECT_GE(comm.collectives_completed(), 25u);
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, CommunicatorTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(CommunicatorTest, BadRankRejected) {
  Communicator comm(2);
  float x = 0;
  EXPECT_TRUE(comm.AllReduce(2, &x, 1).IsInvalidArgument());
  EXPECT_TRUE(comm.Barrier(-1).IsInvalidArgument());
}

TEST(CommunicatorTest, ReduceScatterRequiresDivisibleCount) {
  Communicator comm(2);
  // Run from two threads to avoid deadlocking on the validation-only path.
  float send[3] = {1, 2, 3};
  float recv[2];
  EXPECT_TRUE(comm.ReduceScatter(0, send, 3, recv).IsInvalidArgument());
}

}  // namespace
}  // namespace angelptm::core
