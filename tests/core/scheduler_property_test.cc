#include <tuple>

#include <gtest/gtest.h>

#include "core/unified_scheduler.h"
#include "util/random.h"
#include "util/units.h"

namespace angelptm::core {
namespace {

/// Property-based sweep of Algorithm 1: random layer structures, page
/// sizes and budgets; whatever the workload, a returned schedule must obey
/// the invariants the engine relies on.
class SchedulerPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

ScheduleInput RandomInput(util::Rng* rng, double budget_scale) {
  ScheduleInput input;
  input.world_size = 1 + int(rng->Uniform(8));
  const int layers = 2 + int(rng->Uniform(10));
  uint64_t next_page = 0;
  uint64_t total_shard = 0;
  std::vector<std::vector<PageRef>> layer_pages(layers);
  for (int l = 0; l < layers; ++l) {
    const int pages = 1 + int(rng->Uniform(5));
    for (int p = 0; p < pages; ++p) {
      const uint64_t bytes = (1 + rng->Uniform(8)) * util::kMiB;
      layer_pages[l].push_back({next_page++, bytes});
      total_shard += bytes;
    }
  }
  for (int pass = 0; pass < 2; ++pass) {
    for (int i = 0; i < layers; ++i) {
      const int l = pass == 0 ? i : layers - 1 - i;
      SchedStep step;
      step.param_pages = layer_pages[l];
      step.workspace_bytes = rng->Uniform(4 * util::kMiB);
      step.retained_bytes = pass == 0 ? int64_t(rng->Uniform(util::kMiB))
                                      : -int64_t(rng->Uniform(util::kMiB));
      input.steps.push_back(step);
    }
  }
  // Make backward retained exactly cancel forward retained.
  for (int i = 0; i < layers; ++i) {
    input.steps[2 * layers - 1 - i].retained_bytes =
        -input.steps[i].retained_bytes;
  }
  input.gpu_memory_budget =
      uint64_t(budget_scale * double(total_shard) * input.world_size) +
      16 * util::kMiB;
  return input;
}

TEST_P(SchedulerPropertyTest, InvariantsHoldUnderRandomWorkloads) {
  const uint64_t seed = std::get<0>(GetParam());
  const int scale_pct = std::get<1>(GetParam());
  util::Rng rng(seed * 1000 + scale_pct);

  for (int trial = 0; trial < 20; ++trial) {
    const ScheduleInput input = RandomInput(&rng, scale_pct / 100.0);
    auto schedule = BuildSchedule(input);
    if (!schedule.ok()) {
      // Tight budgets may be genuinely infeasible; that must surface as
      // OutOfMemory, never anything else.
      ASSERT_TRUE(schedule.status().IsOutOfMemory()) << schedule.status();
      continue;
    }

    // (1) Replay never exceeds the budget (the engine's safety contract).
    const MemoryProfile profile = ReplaySchedule(input, schedule->tasks);
    ASSERT_LE(profile.peak, input.gpu_memory_budget);
    ASSERT_EQ(schedule->peak_gpu_bytes, profile.peak);

    // (2) Exactly one compute per step, in order; every gather triggers at
    //     or before its serving step; each page moved at most once.
    std::vector<int> computes(input.steps.size(), 0);
    std::set<uint64_t> moved;
    size_t gathers = 0;
    for (const Task& task : schedule->tasks) {
      switch (task.op) {
        case TaskOp::kCompute:
          ASSERT_GE(task.step, 0);
          ASSERT_LT(size_t(task.step), input.steps.size());
          computes[task.step]++;
          ASSERT_EQ(task.trigger_id, task.step);
          break;
        case TaskOp::kAllGather:
          ASSERT_LE(task.trigger_id, task.step);
          ASSERT_GE(task.trigger_id, 0);
          ++gathers;
          break;
        case TaskOp::kMoveToGpu:
          ASSERT_TRUE(moved.insert(task.page_id).second)
              << "page " << task.page_id << " moved twice";
          break;
      }
    }
    for (size_t s = 0; s < input.steps.size(); ++s) {
      ASSERT_EQ(computes[s], 1) << "step " << s;
    }
    // (3) Every step's every page has a gather.
    size_t expected_gathers = 0;
    for (const SchedStep& step : input.steps) {
      expected_gathers += step.param_pages.size();
    }
    ASSERT_EQ(gathers, expected_gathers);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndBudgets, SchedulerPropertyTest,
    ::testing::Combine(::testing::Values(uint64_t(1), uint64_t(2),
                                         uint64_t(3)),
                       // Budget as % of the total gathered footprint: from
                       // starved to ample.
                       ::testing::Values(10, 40, 120, 400)));

}  // namespace
}  // namespace angelptm::core
