#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/allocator.h"
#include "core/tensor.h"
#include "mem/hierarchical_memory.h"

namespace angelptm::core {
namespace {

constexpr size_t kPage = 4096;

class AllocatorTest : public ::testing::Test {
 protected:
  AllocatorTest() : memory_(MakeOptions()), allocator_(&memory_) {}

  static mem::HierarchicalMemoryOptions MakeOptions() {
    mem::HierarchicalMemoryOptions o;
    o.page_bytes = kPage;
    o.gpu_capacity_bytes = 16 * kPage;
    o.cpu_capacity_bytes = 64 * kPage;
    o.ssd_capacity_bytes = 64 * kPage;
    o.ssd_path =
        "/tmp/angelptm_alloc_test_" + std::to_string(::getpid()) + ".bin";
    return o;
  }

  mem::HierarchicalMemory memory_;
  Allocator allocator_;
};

TEST_F(AllocatorTest, SmallTensorGetsSinglePage) {
  auto tensor = allocator_.Allocate({10, 10}, DType::kFp32,
                                    mem::DeviceKind::kCpu);
  ASSERT_TRUE(tensor.ok());
  EXPECT_EQ((*tensor)->SizeBytes(), 400u);
  EXPECT_EQ((*tensor)->pages().size(), 1u);
  EXPECT_TRUE((*tensor)->IsResident());
  EXPECT_TRUE((*tensor)->IsContiguous());
  EXPECT_EQ((*tensor)->device_index(),
            static_cast<int>(mem::DeviceKind::kCpu));
  EXPECT_EQ(allocator_.num_tensors(), 1u);
}

TEST_F(AllocatorTest, MultiPageTensorSpansCeilPages) {
  // 2.5 pages worth of floats.
  const size_t elems = (2 * kPage + kPage / 2) / 4;
  auto tensor =
      allocator_.Allocate({elems}, DType::kFp32, mem::DeviceKind::kCpu);
  ASSERT_TRUE(tensor.ok());
  EXPECT_EQ((*tensor)->pages().size(), 3u);
}

TEST_F(AllocatorTest, DataRoundTripThroughPages) {
  const size_t elems = 3 * kPage / 4;  // 3 pages of fp32.
  auto tensor =
      allocator_.Allocate({elems}, DType::kFp32, mem::DeviceKind::kCpu);
  ASSERT_TRUE(tensor.ok());
  std::vector<float> values(elems);
  for (size_t i = 0; i < elems; ++i) values[i] = float(i) * 0.5f;
  ASSERT_TRUE((*tensor)->WriteFloats(values).ok());
  std::vector<float> back;
  ASSERT_TRUE((*tensor)->ReadFloats(&back).ok());
  EXPECT_EQ(back, values);
}

TEST_F(AllocatorTest, Fp16TensorsConvertOnReadWrite) {
  auto tensor =
      allocator_.Allocate({8}, DType::kFp16, mem::DeviceKind::kCpu);
  ASSERT_TRUE(tensor.ok());
  EXPECT_EQ((*tensor)->SizeBytes(), 16u);
  ASSERT_TRUE(
      (*tensor)->WriteFloats({1.0f, -2.5f, 0.0f, 4.0f, 8.0f, 0.5f, 3.0f, -1.0f})
          .ok());
  std::vector<float> back;
  ASSERT_TRUE((*tensor)->ReadFloats(&back).ok());
  EXPECT_EQ(back[1], -2.5f);  // Exactly representable in fp16.
  EXPECT_EQ(back[4], 8.0f);
}

TEST_F(AllocatorTest, GroupedTensorsShareTailPage) {
  // Two sub-page tensors in the same group must pack into ONE page.
  auto a = allocator_.Allocate({100}, DType::kFp32, mem::DeviceKind::kCpu,
                               /*group=*/1);
  auto b = allocator_.Allocate({100}, DType::kFp32, mem::DeviceKind::kCpu,
                               /*group=*/1);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ((*a)->pages().size(), 1u);
  ASSERT_EQ((*b)->pages().size(), 1u);
  EXPECT_EQ((*a)->pages()[0], (*b)->pages()[0]);
  EXPECT_EQ(memory_.num_live_pages(), 1u);
}

TEST_F(AllocatorTest, ThirdGroupTensorOpensNewPage) {
  // The two-tensors-per-page cap (§4.1).
  auto a = allocator_.Allocate({100}, DType::kFp32, mem::DeviceKind::kCpu, 1);
  auto b = allocator_.Allocate({100}, DType::kFp32, mem::DeviceKind::kCpu, 1);
  auto c = allocator_.Allocate({100}, DType::kFp32, mem::DeviceKind::kCpu, 1);
  ASSERT_TRUE(c.ok());
  EXPECT_NE((*c)->pages()[0], (*a)->pages()[0]);
  EXPECT_EQ(memory_.num_live_pages(), 2u);
  (void)b;
}

TEST_F(AllocatorTest, DifferentGroupsDoNotShare) {
  auto a = allocator_.Allocate({100}, DType::kFp32, mem::DeviceKind::kCpu, 1);
  auto b = allocator_.Allocate({100}, DType::kFp32, mem::DeviceKind::kCpu, 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE((*a)->pages()[0], (*b)->pages()[0]);
}

TEST_F(AllocatorTest, UngroupedTensorsGetExclusivePages) {
  auto a = allocator_.Allocate({100}, DType::kFp32, mem::DeviceKind::kCpu);
  auto b = allocator_.Allocate({100}, DType::kFp32, mem::DeviceKind::kCpu);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE((*a)->pages()[0], (*b)->pages()[0]);
}

TEST_F(AllocatorTest, SharedPageDataDoesNotOverlap) {
  auto a = allocator_.Allocate({64}, DType::kFp32, mem::DeviceKind::kCpu, 1);
  auto b = allocator_.Allocate({64}, DType::kFp32, mem::DeviceKind::kCpu, 1);
  std::vector<float> ones(64, 1.0f);
  std::vector<float> twos(64, 2.0f);
  ASSERT_TRUE((*a)->WriteFloats(ones).ok());
  ASSERT_TRUE((*b)->WriteFloats(twos).ok());
  std::vector<float> back;
  ASSERT_TRUE((*a)->ReadFloats(&back).ok());
  EXPECT_EQ(back, ones);
  ASSERT_TRUE((*b)->ReadFloats(&back).ok());
  EXPECT_EQ(back, twos);
}

TEST_F(AllocatorTest, ReleaseReturnsFramesToTier) {
  const uint64_t before = memory_.used_bytes(mem::DeviceKind::kCpu);
  auto tensor = allocator_.Allocate({kPage}, DType::kFp32,
                                    mem::DeviceKind::kCpu);  // 4 pages.
  ASSERT_TRUE(tensor.ok());
  EXPECT_GT(memory_.used_bytes(mem::DeviceKind::kCpu), before);
  ASSERT_TRUE(allocator_.Release(*tensor).ok());
  EXPECT_EQ(memory_.used_bytes(mem::DeviceKind::kCpu), before);
  EXPECT_EQ(allocator_.num_tensors(), 0u);
}

TEST_F(AllocatorTest, SharedPageSurvivesPartnerRelease) {
  auto a = allocator_.Allocate({100}, DType::kFp32, mem::DeviceKind::kCpu, 1);
  auto b = allocator_.Allocate({100}, DType::kFp32, mem::DeviceKind::kCpu, 1);
  std::vector<float> twos(100, 2.0f);
  ASSERT_TRUE((*b)->WriteFloats(twos).ok());
  ASSERT_TRUE(allocator_.Release(*a).ok());
  EXPECT_EQ(memory_.num_live_pages(), 1u);
  std::vector<float> back;
  ASSERT_TRUE((*b)->ReadFloats(&back).ok());
  EXPECT_EQ(back, twos);
  ASSERT_TRUE(allocator_.Release(*b).ok());
  EXPECT_EQ(memory_.num_live_pages(), 0u);
}

TEST_F(AllocatorTest, ReleaseUnknownTensorFails) {
  Tensor stray(999, {4}, DType::kFp32);
  EXPECT_TRUE(allocator_.Release(&stray).IsNotFound());
  EXPECT_TRUE(allocator_.Release(nullptr).IsInvalidArgument());
}

TEST_F(AllocatorTest, MoveTensorAcrossTiersPreservesData) {
  const size_t elems = kPage / 2;  // 2 pages fp32.
  auto tensor =
      allocator_.Allocate({elems}, DType::kFp32, mem::DeviceKind::kCpu);
  ASSERT_TRUE(tensor.ok());
  std::vector<float> values(elems);
  for (size_t i = 0; i < elems; ++i) values[i] = float(i);
  ASSERT_TRUE((*tensor)->WriteFloats(values).ok());

  ASSERT_TRUE(allocator_.Move(*tensor, mem::DeviceKind::kGpu).ok());
  EXPECT_EQ((*tensor)->device_index(),
            static_cast<int>(mem::DeviceKind::kGpu));
  std::vector<float> back;
  ASSERT_TRUE((*tensor)->ReadFloats(&back).ok());
  EXPECT_EQ(back, values);

  // Through SSD and back.
  ASSERT_TRUE(allocator_.Move(*tensor, mem::DeviceKind::kSsd).ok());
  EXPECT_FALSE((*tensor)->IsResident());
  ASSERT_TRUE(allocator_.Move(*tensor, mem::DeviceKind::kCpu).ok());
  ASSERT_TRUE((*tensor)->ReadFloats(&back).ok());
  EXPECT_EQ(back, values);
}

TEST_F(AllocatorTest, SharedPageMoveCarriesPartner) {
  auto a = allocator_.Allocate({100}, DType::kFp32, mem::DeviceKind::kCpu, 1);
  auto b = allocator_.Allocate({100}, DType::kFp32, mem::DeviceKind::kCpu, 1);
  ASSERT_TRUE(allocator_.Move(*a, mem::DeviceKind::kGpu).ok());
  // Both tensors rode the same page.
  EXPECT_EQ((*b)->device_index(), static_cast<int>(mem::DeviceKind::kGpu));
}

TEST_F(AllocatorTest, DeviceIndexMinusOneWhenSplit) {
  // Footnote 2: a tensor split across tiers is "not ready".
  const size_t elems = kPage / 2;  // 2 pages.
  auto tensor =
      allocator_.Allocate({elems}, DType::kFp32, mem::DeviceKind::kCpu);
  ASSERT_TRUE(tensor.ok());
  ASSERT_TRUE(
      memory_.MovePageSync((*tensor)->pages()[0], mem::DeviceKind::kGpu).ok());
  EXPECT_EQ((*tensor)->device_index(), mem::kDeviceNotReady);
  EXPECT_FALSE((*tensor)->IsResident());
}

TEST_F(AllocatorTest, MergeMakesFragmentedTensorContiguous) {
  // Arrange a non-contiguous layout: free a hole, then allocate across it.
  auto t1 = allocator_.Allocate({kPage / 4}, DType::kFp32,
                                mem::DeviceKind::kCpu);  // frame 0
  auto t2 = allocator_.Allocate({kPage / 4}, DType::kFp32,
                                mem::DeviceKind::kCpu);  // frame 1
  ASSERT_TRUE(allocator_.Release(*t1).ok());
  const size_t elems = kPage / 2;  // 2 pages: gets frames {0, 2}.
  auto big =
      allocator_.Allocate({elems}, DType::kFp32, mem::DeviceKind::kCpu);
  ASSERT_TRUE(big.ok());
  std::vector<float> values(elems);
  for (size_t i = 0; i < elems; ++i) values[i] = float(i) * 2.0f;
  ASSERT_TRUE((*big)->WriteFloats(values).ok());

  if (!(*big)->IsContiguous()) {
    ASSERT_TRUE(allocator_.Merge(*big).ok());
  } else {
    // Layout happened to be contiguous; Merge must be a no-op then.
    ASSERT_TRUE(allocator_.Merge(*big).ok());
  }
  EXPECT_TRUE((*big)->IsContiguous());
  std::vector<float> back;
  ASSERT_TRUE((*big)->ReadFloats(&back).ok());
  EXPECT_EQ(back, values);
  // data() now legal.
  EXPECT_NE((*big)->data(), nullptr);
  (void)t2;
}

TEST_F(AllocatorTest, AllocationFailureLeaksNothing) {
  // GPU tier has 16 frames; ask for 20 pages worth.
  const uint64_t used_before = memory_.used_bytes(mem::DeviceKind::kGpu);
  auto huge = allocator_.Allocate({20 * kPage / 4}, DType::kFp32,
                                  mem::DeviceKind::kGpu);
  EXPECT_FALSE(huge.ok());
  EXPECT_TRUE(huge.status().IsResourceExhausted());
  EXPECT_EQ(memory_.used_bytes(mem::DeviceKind::kGpu), used_before);
  EXPECT_EQ(allocator_.num_tensors(), 0u);
}

TEST_F(AllocatorTest, PaddingAccounting) {
  EXPECT_EQ(allocator_.padding_bytes(), 0u);
  auto tensor =
      allocator_.Allocate({100}, DType::kFp32, mem::DeviceKind::kCpu);
  ASSERT_TRUE(tensor.ok());
  EXPECT_EQ(allocator_.allocated_bytes(), 400u);
  EXPECT_EQ(allocator_.padding_bytes(), kPage - 400u);
  ASSERT_TRUE(allocator_.Release(*tensor).ok());
  EXPECT_EQ(allocator_.padding_bytes(), 0u);
}

TEST_F(AllocatorTest, ZeroElementTensorRejected) {
  EXPECT_TRUE(allocator_.Allocate({0, 5}, DType::kFp32, mem::DeviceKind::kCpu)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace angelptm::core
