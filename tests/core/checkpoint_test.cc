#include "core/checkpoint.h"

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "train/dataset.h"
#include "train/mlp.h"
#include "train/trainer.h"
#include "util/random.h"

namespace angelptm::core {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  CheckpointTest() : memory_(MemoryOptions()), allocator_(&memory_) {}

  static mem::HierarchicalMemoryOptions MemoryOptions() {
    mem::HierarchicalMemoryOptions options;
    options.page_bytes = 16 * 1024;
    options.gpu_capacity_bytes = 4ull << 20;
    options.cpu_capacity_bytes = 64ull << 20;
    options.ssd_capacity_bytes = 64ull << 20;
    options.ssd_path = TempPath("tier");
    return options;
  }

  static std::string TempPath(const std::string& tag) {
    static int counter = 0;
    return "/tmp/angelptm_ckpt_" + std::to_string(::getpid()) + "_" + tag +
           "_" + std::to_string(counter++) + ".bin";
  }

  std::unique_ptr<LockFreeUpdater> MakeUpdater(
      mem::DeviceKind master = mem::DeviceKind::kCpu) {
    LockFreeUpdater::Options options;
    options.optimizer.learning_rate = 0.05;
    options.master_device = master;
    auto updater = std::make_unique<LockFreeUpdater>(&allocator_, options);
    EXPECT_TRUE(updater->AddLayer({1.0f, 2.0f, 3.0f}).ok());
    EXPECT_TRUE(updater->AddLayer(std::vector<float>(64, 0.5f)).ok());
    return updater;
  }

  mem::HierarchicalMemory memory_;
  Allocator allocator_;
};

TEST_F(CheckpointTest, SaveLoadRoundTripRestoresExactState) {
  const std::string path = TempPath("roundtrip");
  auto updater = MakeUpdater();
  // Advance the state a bit.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(updater->OffloadGrads(0, {0.1f, -0.2f, 0.3f}).ok());
    ASSERT_TRUE(
        updater->OffloadGrads(1, std::vector<float>(64, 0.05f)).ok());
    ASSERT_TRUE(updater->UpdateOnce().ok());
  }
  std::vector<float> saved_p0, saved_p1;
  ASSERT_TRUE(updater->ReadMasterParams(0, &saved_p0).ok());
  ASSERT_TRUE(updater->ReadMasterParams(1, &saved_p1).ok());
  ASSERT_TRUE(SaveCheckpoint(updater.get(), path).ok());

  // Keep training past the checkpoint (the "failure" happens here).
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(updater->OffloadGrads(0, {1.0f, 1.0f, 1.0f}).ok());
    ASSERT_TRUE(updater->UpdateOnce().ok());
  }
  std::vector<float> diverged;
  ASSERT_TRUE(updater->ReadMasterParams(0, &diverged).ok());
  EXPECT_NE(diverged, saved_p0);

  // Recovery: a fresh updater restores the exact checkpointed state.
  auto recovered = MakeUpdater();
  ASSERT_TRUE(LoadCheckpoint(recovered.get(), path).ok());
  std::vector<float> restored_p0, restored_p1, buffered;
  ASSERT_TRUE(recovered->ReadMasterParams(0, &restored_p0).ok());
  ASSERT_TRUE(recovered->ReadMasterParams(1, &restored_p1).ok());
  EXPECT_EQ(restored_p0, saved_p0);
  EXPECT_EQ(restored_p1, saved_p1);
  // The fp16 compute view refreshed too (within fp16 rounding).
  ASSERT_TRUE(recovered->FetchParams(0, &buffered).ok());
  for (size_t i = 0; i < buffered.size(); ++i) {
    EXPECT_NEAR(buffered[i], saved_p0[i], 5e-3);
  }
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, ResumedTrainingContinuesFromCheckpoint) {
  // Train 60 steps, checkpoint at 30, resume in a second trainer: the
  // resumed run must match the uninterrupted run exactly (identical
  // batches, deterministic Adam).
  const std::string path = TempPath("resume");
  const train::MlpModel model({{8, 16, 2}});
  train::SyntheticRegression dataset(8, 16, 2, 5);

  train::TrainerOptions options;
  options.adam.learning_rate = 3e-3;
  options.batch_size = 16;
  options.seed = 3;

  // Uninterrupted reference: 60 steps.
  train::Trainer reference(&allocator_, &model, options);
  ASSERT_TRUE(reference.Init().ok());
  ASSERT_TRUE(reference.Train(dataset, 60).ok());
  std::vector<float> reference_params;
  ASSERT_TRUE(
      reference.updater()->ReadMasterParams(0, &reference_params).ok());

  // Interrupted run: 30 steps, checkpoint, crash; new trainer replays the
  // SAME first 30 batches (same seed) to keep the data stream aligned,
  // then restores the checkpoint and trains the remaining 30.
  train::Trainer first_half(&allocator_, &model, options);
  ASSERT_TRUE(first_half.Init().ok());
  ASSERT_TRUE(first_half.Train(dataset, 30).ok());
  ASSERT_TRUE(SaveCheckpoint(first_half.updater(), path).ok());

  train::Trainer resumed(&allocator_, &model, options);
  ASSERT_TRUE(resumed.Init().ok());
  ASSERT_TRUE(resumed.Train(dataset, 30).ok());  // Advance the data stream.
  ASSERT_TRUE(LoadCheckpoint(resumed.updater(), path).ok());
  ASSERT_TRUE(resumed.Train(dataset, 30).ok());

  std::vector<float> resumed_params;
  ASSERT_TRUE(
      resumed.updater()->ReadMasterParams(0, &resumed_params).ok());
  ASSERT_EQ(resumed_params.size(), reference_params.size());
  for (size_t i = 0; i < resumed_params.size(); ++i) {
    EXPECT_NEAR(resumed_params[i], reference_params[i], 1e-5) << i;
  }
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, SsdResidentStatesCheckpointToo) {
  const std::string path = TempPath("ssd");
  auto updater = MakeUpdater(mem::DeviceKind::kSsd);
  ASSERT_TRUE(updater->OffloadGrads(0, {0.5f, 0.5f, 0.5f}).ok());
  ASSERT_TRUE(updater->UpdateOnce().ok());
  std::vector<float> before;
  ASSERT_TRUE(updater->ReadMasterParams(0, &before).ok());
  ASSERT_TRUE(SaveCheckpoint(updater.get(), path).ok());

  auto recovered = MakeUpdater(mem::DeviceKind::kSsd);
  ASSERT_TRUE(LoadCheckpoint(recovered.get(), path).ok());
  std::vector<float> after;
  ASSERT_TRUE(recovered->ReadMasterParams(0, &after).ok());
  EXPECT_EQ(after, before);
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, CorruptCheckpointRejected) {
  const std::string path = TempPath("corrupt");
  auto updater = MakeUpdater();
  ASSERT_TRUE(SaveCheckpoint(updater.get(), path).ok());

  // Flip one byte in the middle of the file.
  {
    std::fstream file(path,
                      std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(40);
    char byte = 0;
    file.read(&byte, 1);
    file.seekp(40);
    byte ^= 0x5A;
    file.write(&byte, 1);
  }
  auto recovered = MakeUpdater();
  const util::Status loaded = LoadCheckpoint(recovered.get(), path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.IsIoError()) << loaded;
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, LayerMismatchRejected) {
  const std::string path = TempPath("mismatch");
  auto updater = MakeUpdater();
  ASSERT_TRUE(SaveCheckpoint(updater.get(), path).ok());

  LockFreeUpdater::Options options;
  LockFreeUpdater single(&allocator_, options);
  ASSERT_TRUE(single.AddLayer({1.0f}).ok());
  EXPECT_TRUE(LoadCheckpoint(&single, path).IsInvalidArgument());
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, MissingFileAndBadMagic) {
  auto updater = MakeUpdater();
  EXPECT_TRUE(
      LoadCheckpoint(updater.get(), "/tmp/angelptm_no_such_ckpt").IsNotFound());

  const std::string path = TempPath("magic");
  std::ofstream(path) << "this is not a checkpoint at all";
  EXPECT_TRUE(LoadCheckpoint(updater.get(), path).IsInvalidArgument());
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, RunningUpdaterSavesButRefusesLoad) {
  // Saving snapshots a *running* updater through the per-layer quiesce;
  // restoring still requires the threads stopped (it rewrites the state
  // they race on wholesale).
  const std::string path = TempPath("running");
  auto updater = MakeUpdater();
  updater->Start();
  ASSERT_TRUE(updater->OffloadGrads(0, {0.1f, 0.1f, 0.1f}).ok());
  EXPECT_TRUE(SaveCheckpoint(updater.get(), path).ok());
  EXPECT_EQ(LoadCheckpoint(updater.get(), path).code(),
            util::StatusCode::kFailedPrecondition);
  updater->Stop();

  auto recovered = MakeUpdater();
  EXPECT_TRUE(LoadCheckpoint(recovered.get(), path).ok());
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, ProgressRoundTrip) {
  const std::string path = TempPath("progress");
  auto updater = MakeUpdater();

  TrainProgress saved;
  saved.global_step = 1234;
  util::Rng rng(99);
  for (int i = 0; i < 7; ++i) (void)rng.NextGaussian();  // Odd count: cache live.
  saved.rng_state = rng.GetState();
  saved.loss_scale = 4096.0;
  saved.scaler_good_steps = 17;
  saved.scaler_overflows = 3;
  saved.scaler_growths = 5;
  saved.has_progress = true;
  uint64_t bytes = 0;
  ASSERT_TRUE(SaveCheckpoint(updater.get(), path, &saved, &bytes).ok());
  EXPECT_GT(bytes, 0u);

  auto recovered = MakeUpdater();
  TrainProgress loaded;
  ASSERT_TRUE(LoadCheckpoint(recovered.get(), path, &loaded).ok());
  EXPECT_TRUE(loaded.has_progress);
  EXPECT_EQ(loaded.global_step, saved.global_step);
  EXPECT_EQ(loaded.rng_state.s, saved.rng_state.s);
  EXPECT_EQ(loaded.rng_state.has_cached_gaussian,
            saved.rng_state.has_cached_gaussian);
  EXPECT_EQ(loaded.rng_state.cached_gaussian, saved.rng_state.cached_gaussian);
  EXPECT_EQ(loaded.loss_scale, saved.loss_scale);
  EXPECT_EQ(loaded.scaler_good_steps, saved.scaler_good_steps);
  EXPECT_EQ(loaded.scaler_overflows, saved.scaler_overflows);
  EXPECT_EQ(loaded.scaler_growths, saved.scaler_growths);

  // A restored RNG continues the exact stream.
  util::Rng resumed(1);
  resumed.SetState(loaded.rng_state);
  EXPECT_EQ(resumed.NextGaussian(), rng.NextGaussian());
  EXPECT_EQ(resumed.NextDouble(), rng.NextDouble());
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, TruncationFailsLoudlyAtEveryOffset) {
  const std::string path = TempPath("torn");
  auto updater = MakeUpdater();
  ASSERT_TRUE(updater->OffloadGrads(0, {0.2f, 0.2f, 0.2f}).ok());
  ASSERT_TRUE(updater->UpdateOnce().ok());
  ASSERT_TRUE(SaveCheckpoint(updater.get(), path).ok());

  std::ifstream sized(path, std::ios::binary | std::ios::ate);
  const long long full = sized.tellg();
  sized.close();
  ASSERT_GT(full, 120);

  // Cut the file inside every section: magic, version, progress block,
  // layer-count, layer header, layer payload, trailing checksum. A torn
  // write must never load and never crash.
  const long long cuts[] = {4, 10, 40, 90, 97, full - 300, full - 4};
  for (const long long cut : cuts) {
    ASSERT_GT(cut, 0) << "bad test offset";
    const std::string torn = TempPath("torn_cut");
    {
      std::ifstream in(path, std::ios::binary);
      std::vector<char> bytes(static_cast<size_t>(cut));
      in.read(bytes.data(), cut);
      std::ofstream out(torn, std::ios::binary);
      out.write(bytes.data(), cut);
    }
    auto recovered = MakeUpdater();
    const util::Status loaded = LoadCheckpoint(recovered.get(), torn);
    ASSERT_FALSE(loaded.ok()) << "cut at " << cut;
    EXPECT_TRUE(loaded.IsIoError() || loaded.IsInvalidArgument())
        << "cut at " << cut << ": " << loaded;
    // Every failure names the file so the operator can find the bad one.
    EXPECT_NE(loaded.message().find(torn), std::string::npos)
        << "cut at " << cut << ": " << loaded;
    std::remove(torn.c_str());
  }
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, ByteFlipsCaughtPerSection) {
  const std::string path = TempPath("flip");
  auto updater = MakeUpdater();
  ASSERT_TRUE(SaveCheckpoint(updater.get(), path).ok());
  std::ifstream sized(path, std::ios::binary | std::ios::ate);
  const long long full = sized.tellg();
  sized.close();

  struct Case {
    long long offset;
    const char* expect;  // Substring the error message must carry.
  };
  const Case cases[] = {
      {2, "is not a checkpoint"},              // Magic.
      {8, "unsupported checkpoint version"},   // Version word.
      {20, "checksum mismatch"},               // Progress block.
      {full - 40, "checksum mismatch"},        // Layer payload.
      {full - 4, "checksum mismatch"},         // The stored checksum itself.
  };
  for (const Case& c : cases) {
    const std::string flipped = TempPath("flip_case");
    {
      std::ifstream in(path, std::ios::binary);
      std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
      bytes[size_t(c.offset)] ^= 0x5A;
      std::ofstream out(flipped, std::ios::binary);
      out.write(bytes.data(), long(bytes.size()));
    }
    auto recovered = MakeUpdater();
    const util::Status loaded = LoadCheckpoint(recovered.get(), flipped);
    ASSERT_FALSE(loaded.ok()) << "flip at " << c.offset;
    EXPECT_NE(loaded.message().find(c.expect), std::string::npos)
        << "flip at " << c.offset << ": " << loaded;
    std::remove(flipped.c_str());
  }
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, RandomizedLayoutsRoundTrip) {
  // Property test: arbitrary layer counts/sizes/Adam steps and a random
  // progress block survive the save/load cycle exactly.
  util::Rng rng(20260805);
  for (int trial = 0; trial < 8; ++trial) {
    const int num_layers = 1 + int(rng.NextDouble() * 5);
    std::vector<size_t> sizes;
    for (int l = 0; l < num_layers; ++l) {
      sizes.push_back(1 + size_t(rng.NextDouble() * 300));
    }
    auto make = [&]() {
      LockFreeUpdater::Options options;
      auto updater = std::make_unique<LockFreeUpdater>(&allocator_, options);
      for (const size_t n : sizes) {
        EXPECT_TRUE(updater->AddLayer(std::vector<float>(n, 0.0f)).ok());
      }
      return updater;
    };
    auto updater = make();
    std::vector<LockFreeUpdater::LayerState> want(num_layers);
    for (int l = 0; l < num_layers; ++l) {
      LockFreeUpdater::LayerState& state = want[l];
      state.step = long(rng.NextDouble() * 10000);
      state.params.resize(sizes[l]);
      state.slots.resize(2);
      state.slots[0].name = "m";
      state.slots[1].name = "v";
      state.slots[0].values.resize(sizes[l]);
      state.slots[1].values.resize(sizes[l]);
      for (size_t i = 0; i < sizes[l]; ++i) {
        state.params[i] = float(rng.NextGaussian());
        state.slots[0].values[i] = float(rng.NextGaussian());
        state.slots[1].values[i] = float(rng.NextDouble());
      }
      ASSERT_TRUE(updater->ImportLayerState(l, state).ok());
    }
    TrainProgress progress;
    progress.global_step = int64_t(rng.NextDouble() * 1000000);
    progress.rng_state = rng.GetState();
    progress.loss_scale = rng.NextDouble() * 65536.0;
    progress.has_progress = true;

    const std::string path = TempPath("prop");
    ASSERT_TRUE(SaveCheckpoint(updater.get(), path, &progress).ok());
    auto recovered = make();
    TrainProgress loaded;
    ASSERT_TRUE(LoadCheckpoint(recovered.get(), path, &loaded).ok());
    EXPECT_EQ(loaded.global_step, progress.global_step);
    EXPECT_EQ(loaded.rng_state.s, progress.rng_state.s);
    EXPECT_EQ(loaded.loss_scale, progress.loss_scale);
    for (int l = 0; l < num_layers; ++l) {
      LockFreeUpdater::LayerState got;
      ASSERT_TRUE(recovered->SnapshotLayerState(l, &got).ok());
      EXPECT_EQ(got.step, want[l].step) << "layer " << l;
      EXPECT_EQ(got.params, want[l].params) << "layer " << l;
      ASSERT_EQ(got.slots.size(), 2u) << "layer " << l;
      EXPECT_EQ(got.slots[0].values, want[l].slots[0].values)
          << "layer " << l;
      EXPECT_EQ(got.slots[1].values, want[l].slots[1].values)
          << "layer " << l;
    }
    std::remove(path.c_str());
  }
}

TEST_F(CheckpointTest, V1CheckpointStillLoads) {
  // Hand-written v1 file (no progress block): the upgrade path must accept
  // it and report has_progress == false so callers fall back to replay.
  const std::string path = TempPath("v1");
  const std::vector<float> p = {1.5f, -2.5f, 3.5f};
  const std::vector<float> m = {0.1f, 0.2f, 0.3f};
  const std::vector<float> v = {0.01f, 0.02f, 0.03f};
  {
    std::vector<char> bytes;
    auto put = [&bytes](const void* data, size_t n) {
      const char* c = static_cast<const char*>(data);
      bytes.insert(bytes.end(), c, c + n);
    };
    put("APTMCKPT", 8);
    const uint32_t version = 1, num_layers = 1;
    put(&version, 4);
    put(&num_layers, 4);
    const uint64_t count = 3;
    const int64_t adam_step = 7;
    put(&count, 8);
    put(&adam_step, 8);
    put(p.data(), 3 * sizeof(float));
    put(m.data(), 3 * sizeof(float));
    put(v.data(), 3 * sizeof(float));
    uint64_t hash = 14695981039346656037ull;
    for (const char byte : bytes) {
      hash ^= static_cast<unsigned char>(byte);
      hash *= 1099511628211ull;
    }
    put(&hash, 8);
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), long(bytes.size()));
  }
  LockFreeUpdater::Options options;
  LockFreeUpdater updater(&allocator_, options);
  ASSERT_TRUE(updater.AddLayer({0.0f, 0.0f, 0.0f}).ok());
  TrainProgress progress;
  progress.has_progress = true;  // Must be cleared by the v1 load.
  ASSERT_TRUE(LoadCheckpoint(&updater, path, &progress).ok());
  EXPECT_FALSE(progress.has_progress);
  EXPECT_EQ(progress.global_step, 0);
  LockFreeUpdater::LayerState got;
  ASSERT_TRUE(updater.SnapshotLayerState(0, &got).ok());
  EXPECT_EQ(got.params, p);
  ASSERT_EQ(got.slots.size(), 2u);
  EXPECT_EQ(got.slots[0].name, "m");
  EXPECT_EQ(got.slots[0].values, m);
  EXPECT_EQ(got.slots[1].name, "v");
  EXPECT_EQ(got.slots[1].values, v);
  EXPECT_EQ(got.step, 7);
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, V2CheckpointLoadsAsAdam) {
  // Hand-written v2 file (progress block but no rule string or named
  // slots): must load into an Adam-configured updater with the fixed
  // {m, v} interpretation of its two state arrays.
  const std::string path = TempPath("v2");
  const std::vector<float> p = {1.5f, -2.5f, 3.5f};
  const std::vector<float> m = {0.1f, 0.2f, 0.3f};
  const std::vector<float> v = {0.01f, 0.02f, 0.03f};
  {
    std::vector<char> bytes;
    auto put = [&bytes](const void* data, size_t n) {
      const char* c = static_cast<const char*>(data);
      bytes.insert(bytes.end(), c, c + n);
    };
    put("APTMCKPT", 8);
    const uint32_t version = 2;
    put(&version, 4);
    // Progress block: global_step, rng state (4-word s, cache flag+value),
    // loss-scaler schedule.
    const int64_t global_step = 42;
    put(&global_step, 8);
    const uint64_t rng_s[4] = {1, 2, 3, 4};
    put(rng_s, 4 * 8);
    const uint8_t has_cached = 0;
    put(&has_cached, 1);
    const double cached = 0.0, loss_scale = 1024.0;
    put(&cached, 8);
    put(&loss_scale, 8);
    const int32_t good_steps = 3;
    const uint64_t overflows = 1, growths = 2;
    put(&good_steps, 4);
    put(&overflows, 8);
    put(&growths, 8);
    const uint32_t num_layers = 1;
    put(&num_layers, 4);
    const uint64_t count = 3;
    const int64_t adam_step = 9;
    put(&count, 8);
    put(&adam_step, 8);
    put(p.data(), 3 * sizeof(float));
    put(m.data(), 3 * sizeof(float));
    put(v.data(), 3 * sizeof(float));
    uint64_t hash = 14695981039346656037ull;
    for (const char byte : bytes) {
      hash ^= static_cast<unsigned char>(byte);
      hash *= 1099511628211ull;
    }
    put(&hash, 8);
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), long(bytes.size()));
  }
  LockFreeUpdater::Options options;
  LockFreeUpdater updater(&allocator_, options);
  ASSERT_TRUE(updater.AddLayer({0.0f, 0.0f, 0.0f}).ok());
  TrainProgress progress;
  ASSERT_TRUE(LoadCheckpoint(&updater, path, &progress).ok());
  EXPECT_TRUE(progress.has_progress);
  EXPECT_EQ(progress.global_step, 42);
  EXPECT_EQ(progress.loss_scale, 1024.0);
  LockFreeUpdater::LayerState got;
  ASSERT_TRUE(updater.SnapshotLayerState(0, &got).ok());
  EXPECT_EQ(got.params, p);
  ASSERT_EQ(got.slots.size(), 2u);
  EXPECT_EQ(got.slots[0].values, m);
  EXPECT_EQ(got.slots[1].values, v);
  EXPECT_EQ(got.step, 9);
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, RuleMismatchRejected) {
  // A checkpoint written under one rule must not silently load into an
  // updater running a different one — the slot semantics differ.
  const std::string path = TempPath("rule");
  auto updater = MakeUpdater();
  ASSERT_TRUE(SaveCheckpoint(updater.get(), path).ok());

  LockFreeUpdater::Options options;
  options.optimizer.rule = "sgdm";
  LockFreeUpdater sgdm(&allocator_, options);
  ASSERT_TRUE(sgdm.AddLayer({1.0f, 2.0f, 3.0f}).ok());
  ASSERT_TRUE(sgdm.AddLayer(std::vector<float>(64, 0.5f)).ok());
  const util::Status loaded = LoadCheckpoint(&sgdm, path);
  ASSERT_TRUE(loaded.IsInvalidArgument()) << loaded;
  EXPECT_NE(loaded.message().find("adam"), std::string::npos) << loaded;
  EXPECT_NE(loaded.message().find("sgdm"), std::string::npos) << loaded;
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, V3RoundTripPreservesRuleAndSlots) {
  // Non-Adam rules round-trip their self-describing slot blocks: adafactor
  // has differently-sized row/col slots, the strongest layout test.
  const std::string path = TempPath("v3");
  LockFreeUpdater::Options options;
  options.optimizer.rule = "adafactor";
  options.optimizer.adafactor_cols = 8;
  auto make = [&]() {
    auto updater = std::make_unique<LockFreeUpdater>(&allocator_, options);
    EXPECT_TRUE(updater->AddLayer(std::vector<float>(20, 1.0f)).ok());
    return updater;
  };
  auto updater = make();
  ASSERT_TRUE(updater->OffloadGrads(0, std::vector<float>(20, 0.3f)).ok());
  ASSERT_TRUE(updater->UpdateOnce().ok());
  LockFreeUpdater::LayerState want;
  ASSERT_TRUE(updater->SnapshotLayerState(0, &want).ok());
  ASSERT_EQ(want.slots.size(), 2u);
  EXPECT_EQ(want.slots[0].name, "row");
  EXPECT_EQ(want.slots[1].name, "col");
  EXPECT_NE(want.slots[0].values.size(), want.slots[1].values.size());
  ASSERT_TRUE(SaveCheckpoint(updater.get(), path).ok());

  auto recovered = make();
  ASSERT_TRUE(LoadCheckpoint(recovered.get(), path).ok());
  LockFreeUpdater::LayerState got;
  ASSERT_TRUE(recovered->SnapshotLayerState(0, &got).ok());
  EXPECT_EQ(got.params, want.params);
  EXPECT_EQ(got.step, want.step);
  ASSERT_EQ(got.slots.size(), 2u);
  EXPECT_EQ(got.slots[0].values, want.slots[0].values);
  EXPECT_EQ(got.slots[1].values, want.slots[1].values);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace angelptm::core
