#include "core/checkpoint.h"

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "train/dataset.h"
#include "train/mlp.h"
#include "train/trainer.h"

namespace angelptm::core {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  CheckpointTest() : memory_(MemoryOptions()), allocator_(&memory_) {}

  static mem::HierarchicalMemoryOptions MemoryOptions() {
    mem::HierarchicalMemoryOptions options;
    options.page_bytes = 16 * 1024;
    options.gpu_capacity_bytes = 4ull << 20;
    options.cpu_capacity_bytes = 64ull << 20;
    options.ssd_capacity_bytes = 64ull << 20;
    options.ssd_path = TempPath("tier");
    return options;
  }

  static std::string TempPath(const std::string& tag) {
    static int counter = 0;
    return "/tmp/angelptm_ckpt_" + std::to_string(::getpid()) + "_" + tag +
           "_" + std::to_string(counter++) + ".bin";
  }

  std::unique_ptr<LockFreeUpdater> MakeUpdater(
      mem::DeviceKind master = mem::DeviceKind::kCpu) {
    LockFreeUpdater::Options options;
    options.adam.learning_rate = 0.05;
    options.master_device = master;
    auto updater = std::make_unique<LockFreeUpdater>(&allocator_, options);
    EXPECT_TRUE(updater->AddLayer({1.0f, 2.0f, 3.0f}).ok());
    EXPECT_TRUE(updater->AddLayer(std::vector<float>(64, 0.5f)).ok());
    return updater;
  }

  mem::HierarchicalMemory memory_;
  Allocator allocator_;
};

TEST_F(CheckpointTest, SaveLoadRoundTripRestoresExactState) {
  const std::string path = TempPath("roundtrip");
  auto updater = MakeUpdater();
  // Advance the state a bit.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(updater->OffloadGrads(0, {0.1f, -0.2f, 0.3f}).ok());
    ASSERT_TRUE(
        updater->OffloadGrads(1, std::vector<float>(64, 0.05f)).ok());
    ASSERT_TRUE(updater->UpdateOnce().ok());
  }
  std::vector<float> saved_p0, saved_p1;
  ASSERT_TRUE(updater->ReadMasterParams(0, &saved_p0).ok());
  ASSERT_TRUE(updater->ReadMasterParams(1, &saved_p1).ok());
  ASSERT_TRUE(SaveCheckpoint(updater.get(), path).ok());

  // Keep training past the checkpoint (the "failure" happens here).
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(updater->OffloadGrads(0, {1.0f, 1.0f, 1.0f}).ok());
    ASSERT_TRUE(updater->UpdateOnce().ok());
  }
  std::vector<float> diverged;
  ASSERT_TRUE(updater->ReadMasterParams(0, &diverged).ok());
  EXPECT_NE(diverged, saved_p0);

  // Recovery: a fresh updater restores the exact checkpointed state.
  auto recovered = MakeUpdater();
  ASSERT_TRUE(LoadCheckpoint(recovered.get(), path).ok());
  std::vector<float> restored_p0, restored_p1, buffered;
  ASSERT_TRUE(recovered->ReadMasterParams(0, &restored_p0).ok());
  ASSERT_TRUE(recovered->ReadMasterParams(1, &restored_p1).ok());
  EXPECT_EQ(restored_p0, saved_p0);
  EXPECT_EQ(restored_p1, saved_p1);
  // The fp16 compute view refreshed too (within fp16 rounding).
  ASSERT_TRUE(recovered->FetchParams(0, &buffered).ok());
  for (size_t i = 0; i < buffered.size(); ++i) {
    EXPECT_NEAR(buffered[i], saved_p0[i], 5e-3);
  }
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, ResumedTrainingContinuesFromCheckpoint) {
  // Train 60 steps, checkpoint at 30, resume in a second trainer: the
  // resumed run must match the uninterrupted run exactly (identical
  // batches, deterministic Adam).
  const std::string path = TempPath("resume");
  const train::MlpModel model({{8, 16, 2}});
  train::SyntheticRegression dataset(8, 16, 2, 5);

  train::TrainerOptions options;
  options.adam.learning_rate = 3e-3;
  options.batch_size = 16;
  options.seed = 3;

  // Uninterrupted reference: 60 steps.
  train::Trainer reference(&allocator_, &model, options);
  ASSERT_TRUE(reference.Init().ok());
  ASSERT_TRUE(reference.Train(dataset, 60).ok());
  std::vector<float> reference_params;
  ASSERT_TRUE(
      reference.updater()->ReadMasterParams(0, &reference_params).ok());

  // Interrupted run: 30 steps, checkpoint, crash; new trainer replays the
  // SAME first 30 batches (same seed) to keep the data stream aligned,
  // then restores the checkpoint and trains the remaining 30.
  train::Trainer first_half(&allocator_, &model, options);
  ASSERT_TRUE(first_half.Init().ok());
  ASSERT_TRUE(first_half.Train(dataset, 30).ok());
  ASSERT_TRUE(SaveCheckpoint(first_half.updater(), path).ok());

  train::Trainer resumed(&allocator_, &model, options);
  ASSERT_TRUE(resumed.Init().ok());
  ASSERT_TRUE(resumed.Train(dataset, 30).ok());  // Advance the data stream.
  ASSERT_TRUE(LoadCheckpoint(resumed.updater(), path).ok());
  ASSERT_TRUE(resumed.Train(dataset, 30).ok());

  std::vector<float> resumed_params;
  ASSERT_TRUE(
      resumed.updater()->ReadMasterParams(0, &resumed_params).ok());
  ASSERT_EQ(resumed_params.size(), reference_params.size());
  for (size_t i = 0; i < resumed_params.size(); ++i) {
    EXPECT_NEAR(resumed_params[i], reference_params[i], 1e-5) << i;
  }
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, SsdResidentStatesCheckpointToo) {
  const std::string path = TempPath("ssd");
  auto updater = MakeUpdater(mem::DeviceKind::kSsd);
  ASSERT_TRUE(updater->OffloadGrads(0, {0.5f, 0.5f, 0.5f}).ok());
  ASSERT_TRUE(updater->UpdateOnce().ok());
  std::vector<float> before;
  ASSERT_TRUE(updater->ReadMasterParams(0, &before).ok());
  ASSERT_TRUE(SaveCheckpoint(updater.get(), path).ok());

  auto recovered = MakeUpdater(mem::DeviceKind::kSsd);
  ASSERT_TRUE(LoadCheckpoint(recovered.get(), path).ok());
  std::vector<float> after;
  ASSERT_TRUE(recovered->ReadMasterParams(0, &after).ok());
  EXPECT_EQ(after, before);
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, CorruptCheckpointRejected) {
  const std::string path = TempPath("corrupt");
  auto updater = MakeUpdater();
  ASSERT_TRUE(SaveCheckpoint(updater.get(), path).ok());

  // Flip one byte in the middle of the file.
  {
    std::fstream file(path,
                      std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(40);
    char byte = 0;
    file.read(&byte, 1);
    file.seekp(40);
    byte ^= 0x5A;
    file.write(&byte, 1);
  }
  auto recovered = MakeUpdater();
  const util::Status loaded = LoadCheckpoint(recovered.get(), path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.IsIoError()) << loaded;
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, LayerMismatchRejected) {
  const std::string path = TempPath("mismatch");
  auto updater = MakeUpdater();
  ASSERT_TRUE(SaveCheckpoint(updater.get(), path).ok());

  LockFreeUpdater::Options options;
  LockFreeUpdater single(&allocator_, options);
  ASSERT_TRUE(single.AddLayer({1.0f}).ok());
  EXPECT_TRUE(LoadCheckpoint(&single, path).IsInvalidArgument());
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, MissingFileAndBadMagic) {
  auto updater = MakeUpdater();
  EXPECT_TRUE(
      LoadCheckpoint(updater.get(), "/tmp/angelptm_no_such_ckpt").IsNotFound());

  const std::string path = TempPath("magic");
  std::ofstream(path) << "this is not a checkpoint at all";
  EXPECT_TRUE(LoadCheckpoint(updater.get(), path).IsInvalidArgument());
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, RunningUpdaterRefused) {
  const std::string path = TempPath("running");
  auto updater = MakeUpdater();
  updater->Start();
  EXPECT_EQ(SaveCheckpoint(updater.get(), path).code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_EQ(LoadCheckpoint(updater.get(), path).code(),
            util::StatusCode::kFailedPrecondition);
  updater->Stop();
}

}  // namespace
}  // namespace angelptm::core
