// Property and contract tests for dist::ProcessGroup. Instances are
// independent, so a whole world runs as threads of this process over real
// Unix-domain sockets — 50+ random layouts stay fast, and the TSan CI leg
// covers the transport.

#include "dist/process_group.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <functional>
#include <thread>
#include <vector>

#include "core/communicator.h"
#include "util/half.h"
#include "util/random.h"

namespace angelptm::dist {
namespace {

std::string RendezvousPath(const std::string& tag) {
  // Short and unique: sun_path is ~107 bytes, and parallel tests must not
  // collide.
  return "/tmp/aptm-" + tag + "-" + std::to_string(::getpid()) + ".sock";
}

/// Connects a world of `world` ProcessGroups on rank threads and runs
/// `body(rank, group)` on each; returns per-rank statuses (Connect errors
/// included).
std::vector<util::Status> RunWorld(
    int world, const std::string& path,
    const std::function<util::Status(int, ProcessGroup*)>& body) {
  std::vector<util::Status> statuses(static_cast<size_t>(world), util::Status::OK());
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(world));
  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      ProcessGroupOptions options;
      options.rank = r;
      options.world_size = world;
      options.rendezvous = path;
      auto group = ProcessGroup::Connect(options);
      if (!group.ok()) {
        statuses[size_t(r)] = group.status();
        return;
      }
      statuses[size_t(r)] = body(r, group->get());
    });
  }
  for (auto& t : threads) t.join();
  return statuses;
}

TEST(ProcessGroupTest, ConnectValidatesOptions) {
  ProcessGroupOptions options;
  options.world_size = 0;
  EXPECT_TRUE(ProcessGroup::Connect(options).status().IsInvalidArgument());

  options.world_size = 4;
  options.rank = 4;
  options.rendezvous = "/tmp/x.sock";
  EXPECT_TRUE(ProcessGroup::Connect(options).status().IsInvalidArgument());

  options.rank = 2;
  options.rendezvous = "";
  EXPECT_TRUE(ProcessGroup::Connect(options).status().IsInvalidArgument());
}

TEST(ProcessGroupTest, WorldOfOneNeedsNoSocket) {
  ProcessGroupOptions options;
  options.world_size = 1;
  auto group = ProcessGroup::Connect(options);
  ASSERT_TRUE(group.ok()) << group.status();
  float x = 3.5f;
  float out = 0.0f;
  ASSERT_TRUE((*group)->AllGather(&x, 1, &out).ok());
  EXPECT_EQ(out, 3.5f);
  ASSERT_TRUE((*group)->AllReduce(&x, 1).ok());
  EXPECT_EQ(x, 3.5f);
  ASSERT_TRUE((*group)->Barrier().ok());
  EXPECT_EQ((*group)->collectives_completed(), 3u);
}

// The core property: over 50+ random (world_size, shard_size, dtype)
// layouts, socket collectives return byte-identical results to the
// in-process core::Communicator — including ragged tails (shards whose
// meaningful elements end mid-shard, zero-padded like ShardedDataParallel
// pads) and fp16 payloads through the byte path.
TEST(ProcessGroupTest, RandomLayoutsMatchCommunicatorBitwise) {
  util::Rng rng(20260809);
  const std::string path = RendezvousPath("prop");
  int layouts = 0;
  for (int round = 0; round < 18; ++round) {
    const int world = 1 + int(rng.Next() % 5);  // 1..5 ranks.
    const size_t shard = rng.Next() % 257;      // 0..256 elements.
    // Ragged tail: the real sharder pads the last shard with zeros; make
    // some rounds end mid-shard so the tail is partially meaningful.
    const size_t ragged_valid = shard > 0 ? rng.Next() % shard : 0;

    // Per-rank input shards; the last rank's tail is zero-padded.
    std::vector<std::vector<float>> shards(static_cast<size_t>(world));
    for (int r = 0; r < world; ++r) {
      shards[size_t(r)].resize(shard);
      for (float& v : shards[size_t(r)]) {
        v = float(rng.NextDouble() * 2.0 - 1.0);
      }
    }
    if (shard > 0) {
      for (size_t i = ragged_valid; i < shard; ++i) {
        shards[size_t(world - 1)][i] = 0.0f;
      }
    }

    // Reference results from the in-process Communicator.
    core::Communicator reference(world);
    std::vector<std::vector<float>> want_gather(
        static_cast<size_t>(world), std::vector<float>(shard * static_cast<size_t>(world)));
    std::vector<std::vector<float>> want_scatter(static_cast<size_t>(world),
                                                 std::vector<float>(shard));
    const size_t total = shard * static_cast<size_t>(world);
    {
      std::vector<std::thread> threads;
      for (int r = 0; r < world; ++r) {
        threads.emplace_back([&, r] {
          ASSERT_TRUE(reference
                          .AllGather(r, shards[size_t(r)].data(), shard,
                                     want_gather[size_t(r)].data())
                          .ok());
          // Reduce-scatter input: every rank contributes its gathered
          // view (arbitrary but rank-dependent data).
          ASSERT_TRUE(reference
                          .ReduceScatter(r, want_gather[size_t(r)].data(),
                                         total,
                                         want_scatter[size_t(r)].data())
                          .ok());
        });
      }
      for (auto& t : threads) t.join();
    }

    // Same collectives over sockets.
    std::vector<std::vector<float>> got_gather(
        static_cast<size_t>(world), std::vector<float>(shard * static_cast<size_t>(world)));
    std::vector<std::vector<float>> got_scatter(static_cast<size_t>(world),
                                                std::vector<float>(shard));
    auto statuses = RunWorld(
        world, path, [&](int r, ProcessGroup* group) -> util::Status {
          ANGEL_RETURN_IF_ERROR(group->AllGather(
              shards[size_t(r)].data(), shard, got_gather[size_t(r)].data()));
          return group->ReduceScatter(got_gather[size_t(r)].data(), total,
                                      got_scatter[size_t(r)].data());
        });
    for (int r = 0; r < world; ++r) {
      ASSERT_TRUE(statuses[size_t(r)].ok())
          << "rank " << r << ": " << statuses[size_t(r)];
      ASSERT_EQ(std::memcmp(got_gather[size_t(r)].data(),
                            want_gather[size_t(r)].data(),
                            total * sizeof(float)),
                0)
          << "all-gather bits differ, world " << world << " shard " << shard;
      ASSERT_EQ(std::memcmp(got_scatter[size_t(r)].data(),
                            want_scatter[size_t(r)].data(),
                            shard * sizeof(float)),
                0)
          << "reduce-scatter bits differ, world " << world << " shard "
          << shard;
      ++layouts;
    }

    // fp16 leg: the byte path must round-trip half-precision payloads
    // (and, with odd element counts, odd byte counts) untouched.
    const size_t halves = rng.Next() % 33;
    std::vector<std::vector<uint16_t>> half_shards(static_cast<size_t>(world));
    for (int r = 0; r < world; ++r) {
      half_shards[size_t(r)].resize(halves);
      for (uint16_t& h : half_shards[size_t(r)]) {
        h = util::FloatToHalfBits(float(rng.NextDouble()));
      }
    }
    std::vector<std::vector<uint16_t>> got_halves(
        static_cast<size_t>(world), std::vector<uint16_t>(halves * static_cast<size_t>(world)));
    statuses = RunWorld(
        world, path, [&](int r, ProcessGroup* group) -> util::Status {
          return group->AllGatherBytes(half_shards[size_t(r)].data(),
                                       halves * sizeof(uint16_t),
                                       got_halves[size_t(r)].data());
        });
    for (int r = 0; r < world; ++r) {
      ASSERT_TRUE(statuses[size_t(r)].ok()) << statuses[size_t(r)];
      for (int src = 0; src < world; ++src) {
        ASSERT_EQ(std::memcmp(got_halves[size_t(r)].data() +
                                  size_t(src) * halves,
                              half_shards[size_t(src)].data(),
                              halves * sizeof(uint16_t)),
                  0);
      }
      ++layouts;
    }
  }
  // 18 rounds x (fp32 + fp16) x avg 3 ranks: comfortably past the 50+
  // layout floor the harness promises.
  EXPECT_GE(layouts, 50);
}

TEST(ProcessGroupTest, AllReduceMatchesCommunicator) {
  util::Rng rng(7);
  const std::string path = RendezvousPath("ar");
  const int world = 4;
  const size_t count = 129;
  std::vector<std::vector<float>> data(static_cast<size_t>(world),
                                       std::vector<float>(count));
  for (auto& rank_data : data) {
    for (float& v : rank_data) v = float(rng.NextDouble() * 10 - 5);
  }

  core::Communicator reference(world);
  std::vector<std::vector<float>> want = data;
  {
    std::vector<std::thread> threads;
    for (int r = 0; r < world; ++r) {
      threads.emplace_back([&, r] {
        ASSERT_TRUE(
            reference.AllReduce(r, want[size_t(r)].data(), count).ok());
      });
    }
    for (auto& t : threads) t.join();
  }

  std::vector<std::vector<float>> got = data;
  auto statuses =
      RunWorld(world, path, [&](int r, ProcessGroup* group) -> util::Status {
        return group->AllReduce(got[size_t(r)].data(), count);
      });
  for (int r = 0; r < world; ++r) {
    ASSERT_TRUE(statuses[size_t(r)].ok()) << statuses[size_t(r)];
    EXPECT_EQ(std::memcmp(got[size_t(r)].data(), want[size_t(r)].data(),
                          count * sizeof(float)),
              0);
  }
}

TEST(ProcessGroupTest, NonDivisibleReduceScatterRejected) {
  const std::string path = RendezvousPath("nd");
  auto statuses =
      RunWorld(2, path, [&](int, ProcessGroup* group) -> util::Status {
        std::vector<float> send(5, 1.0f);  // 5 % 2 != 0.
        std::vector<float> recv(3);
        const util::Status status =
            group->ReduceScatter(send.data(), send.size(), recv.data());
        // Both ranks reject locally, before any wire traffic, so the
        // group stays usable afterwards.
        if (!status.IsInvalidArgument()) {
          return util::Status::Internal("expected InvalidArgument, got " +
                                        status.ToString());
        }
        return group->Barrier();
      });
  for (const auto& status : statuses) {
    EXPECT_TRUE(status.ok()) << status;
  }
}

TEST(ProcessGroupTest, PeerDeathSurfacesAsPeerLoss) {
  const std::string path = RendezvousPath("pl");
  auto statuses =
      RunWorld(2, path, [&](int r, ProcessGroup* group) -> util::Status {
        if (r == 1) {
          // Rank 1 "dies" right after rendezvous: its ProcessGroup (and
          // socket) is torn down on return.
          return util::Status::OK();
        }
        // Rank 0's next collective hits the closed connection.
        std::vector<float> data(8, 1.0f);
        return group->AllReduce(data.data(), data.size());
      });
  EXPECT_TRUE(statuses[1].ok());
  ASSERT_FALSE(statuses[0].ok());
  EXPECT_TRUE(ProcessGroup::IsPeerLoss(statuses[0])) << statuses[0];
  EXPECT_FALSE(ProcessGroup::IsPeerLoss(util::Status::OK()));
  EXPECT_FALSE(
      ProcessGroup::IsPeerLoss(util::Status::IoError("disk on fire")));
}

TEST(ProcessGroupTest, StatsCountTraffic) {
  const std::string path = RendezvousPath("st");
  const int world = 3;
  std::vector<ProcessGroup::Stats> stats(static_cast<size_t>(world));
  auto statuses =
      RunWorld(world, path, [&](int r, ProcessGroup* group) -> util::Status {
        std::vector<float> shard(16, float(r));
        std::vector<float> out(16 * static_cast<size_t>(world));
        ANGEL_RETURN_IF_ERROR(group->AllGather(shard.data(), 16, out.data()));
        ANGEL_RETURN_IF_ERROR(group->Barrier());
        stats[size_t(r)] = group->GetStats();
        return util::Status::OK();
      });
  for (int r = 0; r < world; ++r) {
    ASSERT_TRUE(statuses[size_t(r)].ok()) << statuses[size_t(r)];
    EXPECT_EQ(stats[size_t(r)].collectives, 2u);
    EXPECT_GT(stats[size_t(r)].bytes_sent, 0u);
    EXPECT_GT(stats[size_t(r)].bytes_received, 0u);
  }
}

TEST(ProcessGroupTest, OptionsFromEnv) {
  ::setenv("ANGEL_RANK", "2", 1);
  ::setenv("ANGEL_WORLD_SIZE", "4", 1);
  ::setenv("ANGEL_RENDEZVOUS", "/tmp/aptm-env.sock", 1);
  auto options = ProcessGroup::OptionsFromEnv();
  ASSERT_TRUE(options.ok()) << options.status();
  EXPECT_EQ(options->rank, 2);
  EXPECT_EQ(options->world_size, 4);
  EXPECT_EQ(options->rendezvous, "/tmp/aptm-env.sock");

  ::setenv("ANGEL_RANK", "7", 1);  // Out of the world's range.
  EXPECT_TRUE(ProcessGroup::OptionsFromEnv().status().IsInvalidArgument());

  ::unsetenv("ANGEL_RANK");
  ::unsetenv("ANGEL_WORLD_SIZE");
  ::unsetenv("ANGEL_RENDEZVOUS");
  EXPECT_FALSE(ProcessGroup::OptionsFromEnv().ok());
}

}  // namespace
}  // namespace angelptm::dist
