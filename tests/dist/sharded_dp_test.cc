#include "dist/sharded_data_parallel.h"

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <thread>

#include <gtest/gtest.h>

#include "train/mlp.h"
#include "train/transformer.h"

namespace angelptm::dist {
namespace {

mem::HierarchicalMemoryOptions MemoryOptions() {
  mem::HierarchicalMemoryOptions options;
  options.page_bytes = 16 * 1024;
  options.gpu_capacity_bytes = 4ull << 20;
  options.cpu_capacity_bytes = 128ull << 20;
  return options;
}

ShardedDpOptions DpOptions(int world) {
  ShardedDpOptions options;
  options.world_size = world;
  options.adam.learning_rate = 3e-3;
  options.batch_per_rank = 8;
  options.seed = 11;
  return options;
}

TEST(ShardedDpTest, FourRanksTrainAndConverge) {
  mem::HierarchicalMemory memory(MemoryOptions());
  core::Allocator allocator(&memory);
  const train::MlpModel model({{16, 64, 64, 4}});
  ShardedDataParallel dp(&allocator, &model, DpOptions(4));
  ASSERT_TRUE(dp.Init().ok());
  train::SyntheticRegression dataset(16, 32, 4, 99);
  auto report = dp.Train(dataset, 150);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_LT(report->final_train_loss, report->losses.front() / 3);
  EXPECT_LT(report->validation_loss, 0.4);
  EXPECT_GT(report->collectives, 0u);
}

TEST(ShardedDpTest, GatheredParamsMatchShardLayout) {
  mem::HierarchicalMemory memory(MemoryOptions());
  core::Allocator allocator(&memory);
  // 3 doesn't divide the layer sizes: exercises padding.
  const train::MlpModel model({{10, 30, 2}});
  ShardedDataParallel dp(&allocator, &model, DpOptions(3));
  ASSERT_TRUE(dp.Init().ok());
  for (int l = 0; l < model.num_layers(); ++l) {
    auto params = dp.GatherLayerParams(l);
    ASSERT_TRUE(params.ok());
    EXPECT_EQ(params->size(), model.LayerParamCount(l));
  }
  EXPECT_TRUE(dp.GatherLayerParams(9).status().IsInvalidArgument());
}

TEST(ShardedDpTest, MultiRankMatchesSingleRank) {
  // §3.2's transparency-of-scale: with the same global batch, 4-rank
  // ZeRO-sharded training must match single-rank training (same data, same
  // math) up to floating-point summation order.
  train::SyntheticRegression dataset(16, 32, 4, 99);
  std::vector<std::vector<float>> single_params, multi_params;
  double single_loss = 0, multi_loss = 0;
  for (const int world : {1, 4}) {
    mem::HierarchicalMemory memory(MemoryOptions());
    core::Allocator allocator(&memory);
    const train::MlpModel model({{16, 32, 4}});
    ShardedDpOptions options = DpOptions(world);
    // Keep the global batch constant: world * batch_per_rank = 32.
    options.batch_per_rank = 32 / world;
    ShardedDataParallel dp(&allocator, &model, options);
    ASSERT_TRUE(dp.Init().ok());
    auto report = dp.Train(dataset, 60);
    ASSERT_TRUE(report.ok());
    auto& params = world == 1 ? single_params : multi_params;
    for (int l = 0; l < model.num_layers(); ++l) {
      auto gathered = dp.GatherLayerParams(l);
      ASSERT_TRUE(gathered.ok());
      params.push_back(*gathered);
    }
    (world == 1 ? single_loss : multi_loss) = report->final_train_loss;
  }
  ASSERT_EQ(single_params.size(), multi_params.size());
  double max_delta = 0;
  for (size_t l = 0; l < single_params.size(); ++l) {
    ASSERT_EQ(single_params[l].size(), multi_params[l].size());
    for (size_t i = 0; i < single_params[l].size(); ++i) {
      max_delta = std::max(
          max_delta,
          double(std::abs(single_params[l][i] - multi_params[l][i])));
    }
  }
  EXPECT_LT(max_delta, 5e-3) << "sharded result diverged from single-rank";
  EXPECT_NEAR(single_loss, multi_loss, 0.02);
}

TEST(ShardedDpTest, WorksWithTransformer) {
  mem::HierarchicalMemory memory(MemoryOptions());
  core::Allocator allocator(&memory);
  train::TransformerConfig config;
  config.seq_len = 4;
  config.d_model = 8;
  config.num_heads = 2;
  config.d_ffn = 16;
  config.num_blocks = 2;
  config.out_dim = 2;
  const train::TinyTransformer model(config);
  train::SyntheticRegression dataset(model.InputSize(), 16,
                                     model.OutputSize(), 99);
  ShardedDpOptions options = DpOptions(2);
  options.batch_per_rank = 8;
  ShardedDataParallel dp(&allocator, &model, options);
  ASSERT_TRUE(dp.Init().ok());
  auto report = dp.Train(dataset, 80);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_LT(report->final_train_loss, report->losses.front());
}

TEST(ShardedDpTest, GpuStagingMatchesUnstagedResults) {
  // Staging the gathered parameters through per-rank fast-tier arenas
  // (fp32, page-granular) must not change the math — and must actually
  // drive page movement on every rank.
  train::SyntheticRegression dataset(16, 32, 4, 99);
  std::vector<float> unstaged_params, staged_params;
  for (const bool staging : {false, true}) {
    mem::HierarchicalMemory memory(MemoryOptions());
    core::Allocator allocator(&memory);
    const train::MlpModel model({{16, 32, 4}});
    ShardedDpOptions options = DpOptions(2);
    options.rank_gpu_capacity_bytes = staging ? (2ull << 20) : 0;
    ShardedDataParallel dp(&allocator, &model, options);
    ASSERT_TRUE(dp.Init().ok());
    auto report = dp.Train(dataset, 40);
    ASSERT_TRUE(report.ok()) << report.status();
    auto params = dp.GatherLayerParams(0);
    ASSERT_TRUE(params.ok());
    (staging ? staged_params : unstaged_params) = *params;
  }
  ASSERT_EQ(staged_params.size(), unstaged_params.size());
  for (size_t i = 0; i < staged_params.size(); ++i) {
    EXPECT_EQ(staged_params[i], unstaged_params[i]) << i;  // fp32: exact.
  }
}

TEST(ShardedDpTest, Stage1MatchesStage3) {
  // Stage 1 (optimizer-only sharding) and stage 3 (full sharding) differ
  // in memory and communication, never in math.
  train::SyntheticRegression dataset(16, 32, 4, 99);
  std::vector<float> stage1_params, stage3_params;
  uint64_t stage1_bytes = 0, stage3_bytes = 0;
  for (const ZeroStage stage : {ZeroStage::kStage1, ZeroStage::kStage3}) {
    mem::HierarchicalMemory memory(MemoryOptions());
    core::Allocator allocator(&memory);
    const train::MlpModel model({{16, 32, 4}});
    ShardedDpOptions options = DpOptions(4);
    options.stage = stage;
    ShardedDataParallel dp(&allocator, &model, options);
    ASSERT_TRUE(dp.Init().ok());
    const uint64_t bytes = allocator.allocated_bytes();
    auto report = dp.Train(dataset, 50);
    ASSERT_TRUE(report.ok()) << report.status();
    auto params = dp.GatherLayerParams(0);
    ASSERT_TRUE(params.ok());
    if (stage == ZeroStage::kStage1) {
      stage1_params = *params;
      stage1_bytes = bytes;
    } else {
      stage3_params = *params;
      stage3_bytes = bytes;
    }
  }
  ASSERT_EQ(stage1_params.size(), stage3_params.size());
  for (size_t i = 0; i < stage1_params.size(); ++i) {
    EXPECT_NEAR(stage1_params[i], stage3_params[i], 2e-3) << i;
  }
  // Stage 1 keeps a full parameter replica per rank: strictly more memory.
  EXPECT_GT(stage1_bytes, stage3_bytes);
}

TEST(ShardedDpTest, TrainBeforeInitFails) {
  mem::HierarchicalMemory memory(MemoryOptions());
  core::Allocator allocator(&memory);
  const train::MlpModel model({{4, 4}});
  ShardedDataParallel dp(&allocator, &model, DpOptions(2));
  train::SyntheticRegression dataset(4, 8, 4, 99);
  EXPECT_EQ(dp.Train(dataset, 1).status().code(),
            util::StatusCode::kFailedPrecondition);
}

TEST(ShardedDpTest, InitRejectsBadOptionsAsStatus) {
  // The constructor only records options; every invalid configuration
  // surfaces from Init() as InvalidArgument, never as a crash.
  mem::HierarchicalMemory memory(MemoryOptions());
  core::Allocator allocator(&memory);
  const train::MlpModel model({{4, 4}});

  ShardedDataParallel bad_world(&allocator, &model, DpOptions(0));
  EXPECT_TRUE(bad_world.Init().IsInvalidArgument());

  ShardedDpOptions pg = DpOptions(2);
  pg.backend = DpBackend::kProcessGroup;
  pg.rank = 2;  // Outside [0, world).
  pg.rendezvous = "/tmp/aptm-never.sock";
  ShardedDataParallel bad_rank(&allocator, &model, pg);
  EXPECT_TRUE(bad_rank.Init().IsInvalidArgument());

  pg.rank = 0;
  pg.rendezvous.clear();
  ShardedDataParallel no_rendezvous(&allocator, &model, pg);
  EXPECT_TRUE(no_rendezvous.Init().IsInvalidArgument());
}

TEST(ShardedDpTest, SocketBackendMatchesThreadBackendBitwise) {
  // The tentpole property at the ShardedDataParallel level: the same job
  // over the kProcessGroup backend (each rank its own instance, own
  // allocator, real sockets) lands on bit-identical losses and parameters
  // as the kInProcess thread backend.
  const int world = 2;
  const int steps = 25;
  const std::string rendezvous =
      "/tmp/aptm-sdp-" + std::to_string(::getpid()) + ".sock";

  std::vector<double> thread_losses;
  std::vector<std::vector<float>> thread_params;
  {
    mem::HierarchicalMemory memory(MemoryOptions());
    core::Allocator allocator(&memory);
    const train::MlpModel model({{16, 32, 4}});
    train::SyntheticRegression dataset(16, 32, 4, 99);
    ShardedDataParallel dp(&allocator, &model, DpOptions(world));
    ASSERT_TRUE(dp.Init().ok());
    auto report = dp.Train(dataset, steps);
    ASSERT_TRUE(report.ok()) << report.status();
    thread_losses = report->losses;
    for (int l = 0; l < model.num_layers(); ++l) {
      auto params = dp.GatherLayerParams(l);
      ASSERT_TRUE(params.ok());
      thread_params.push_back(*params);
    }
  }

  std::vector<double> socket_losses;
  std::vector<std::vector<float>> socket_params;
  {
    std::vector<util::Status> statuses(world, util::Status::OK());
    std::vector<std::thread> ranks;
    for (int r = 0; r < world; ++r) {
      ranks.emplace_back([&, r] {
        // Each "process": private memory, allocator, and model instance.
        mem::HierarchicalMemory memory(MemoryOptions());
        core::Allocator allocator(&memory);
        const train::MlpModel model({{16, 32, 4}});
        train::SyntheticRegression dataset(16, 32, 4, 99);
        ShardedDpOptions options = DpOptions(world);
        options.backend = DpBackend::kProcessGroup;
        options.rank = r;
        options.rendezvous = rendezvous;
        ShardedDataParallel dp(&allocator, &model, options);
        statuses[r] = dp.Init();
        if (!statuses[r].ok()) return;
        auto report = dp.Train(dataset, steps);
        if (!report.ok()) {
          statuses[r] = report.status();
          return;
        }
        // GatherLayerParams is a collective here: both ranks call it for
        // every layer, rank 0 records.
        for (int l = 0; l < model.num_layers(); ++l) {
          auto params = dp.GatherLayerParams(l);
          if (!params.ok()) {
            statuses[r] = params.status();
            return;
          }
          if (r == 0) socket_params.push_back(*params);
        }
        if (r == 0) socket_losses = report->losses;
      });
    }
    for (auto& t : ranks) t.join();
    for (const auto& status : statuses) ASSERT_TRUE(status.ok()) << status;
  }

  ASSERT_EQ(socket_losses.size(), thread_losses.size());
  for (size_t s = 0; s < thread_losses.size(); ++s) {
    EXPECT_EQ(socket_losses[s], thread_losses[s]) << "step " << s;
  }
  ASSERT_EQ(socket_params.size(), thread_params.size());
  for (size_t l = 0; l < thread_params.size(); ++l) {
    ASSERT_EQ(socket_params[l].size(), thread_params[l].size());
    for (size_t i = 0; i < thread_params[l].size(); ++i) {
      ASSERT_EQ(socket_params[l][i], thread_params[l][i])
          << "layer " << l << " element " << i;
    }
  }
}

TEST(ShardedDpTest, CheckpointResumeStaysOnTrajectory) {
  // A job that trains 10 steps straight and a job that trains 4 steps,
  // "dies", and resumes from its shard checkpoints must end on identical
  // parameters — the data stream replays from the seed and the shard
  // states carry the optimizer forward.
  char pattern[] = "/tmp/aptm-res-XXXXXX";
  ASSERT_NE(::mkdtemp(pattern), nullptr);
  const std::string ckpt_dir = pattern;
  train::SyntheticRegression dataset(16, 32, 4, 99);
  const int steps = 10;

  std::vector<float> straight_params;
  {
    mem::HierarchicalMemory memory(MemoryOptions());
    core::Allocator allocator(&memory);
    const train::MlpModel model({{16, 32, 4}});
    ShardedDataParallel dp(&allocator, &model, DpOptions(2));
    ASSERT_TRUE(dp.Init().ok());
    auto report = dp.Train(dataset, steps);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(report->resumed_step, 0);
    auto params = dp.GatherLayerParams(0);
    ASSERT_TRUE(params.ok());
    straight_params = *params;
  }

  ShardedDpOptions options = DpOptions(2);
  options.checkpoint_every_n_steps = 2;
  options.checkpoint_dir = ckpt_dir;
  {
    // First incarnation: 4 steps, shard files at steps 2 and 4.
    mem::HierarchicalMemory memory(MemoryOptions());
    core::Allocator allocator(&memory);
    const train::MlpModel model({{16, 32, 4}});
    ShardedDataParallel dp(&allocator, &model, options);
    ASSERT_TRUE(dp.Init().ok());
    ASSERT_TRUE(dp.Train(dataset, 4).ok());
  }
  {
    // Restarted incarnation: resumes at step 4, finishes the job.
    mem::HierarchicalMemory memory(MemoryOptions());
    core::Allocator allocator(&memory);
    const train::MlpModel model({{16, 32, 4}});
    ShardedDataParallel dp(&allocator, &model, options);
    ASSERT_TRUE(dp.Init().ok());
    auto report = dp.Train(dataset, steps);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(report->resumed_step, 4);
    auto params = dp.GatherLayerParams(0);
    ASSERT_TRUE(params.ok());
    ASSERT_EQ(params->size(), straight_params.size());
    for (size_t i = 0; i < straight_params.size(); ++i) {
      ASSERT_EQ((*params)[i], straight_params[i]) << i;
    }
  }
  std::error_code ec;
  std::filesystem::remove_all(ckpt_dir, ec);
}

}  // namespace
}  // namespace angelptm::dist
