#include "dist/sharded_data_parallel.h"

#include <cmath>

#include <gtest/gtest.h>

#include "train/mlp.h"
#include "train/transformer.h"

namespace angelptm::dist {
namespace {

mem::HierarchicalMemoryOptions MemoryOptions() {
  mem::HierarchicalMemoryOptions options;
  options.page_bytes = 16 * 1024;
  options.gpu_capacity_bytes = 4ull << 20;
  options.cpu_capacity_bytes = 128ull << 20;
  return options;
}

ShardedDpOptions DpOptions(int world) {
  ShardedDpOptions options;
  options.world_size = world;
  options.adam.learning_rate = 3e-3;
  options.batch_per_rank = 8;
  options.seed = 11;
  return options;
}

TEST(ShardedDpTest, FourRanksTrainAndConverge) {
  mem::HierarchicalMemory memory(MemoryOptions());
  core::Allocator allocator(&memory);
  const train::MlpModel model({{16, 64, 64, 4}});
  ShardedDataParallel dp(&allocator, &model, DpOptions(4));
  ASSERT_TRUE(dp.Init().ok());
  train::SyntheticRegression dataset(16, 32, 4, 99);
  auto report = dp.Train(dataset, 150);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_LT(report->final_train_loss, report->losses.front() / 3);
  EXPECT_LT(report->validation_loss, 0.4);
  EXPECT_GT(report->collectives, 0u);
}

TEST(ShardedDpTest, GatheredParamsMatchShardLayout) {
  mem::HierarchicalMemory memory(MemoryOptions());
  core::Allocator allocator(&memory);
  // 3 doesn't divide the layer sizes: exercises padding.
  const train::MlpModel model({{10, 30, 2}});
  ShardedDataParallel dp(&allocator, &model, DpOptions(3));
  ASSERT_TRUE(dp.Init().ok());
  for (int l = 0; l < model.num_layers(); ++l) {
    auto params = dp.GatherLayerParams(l);
    ASSERT_TRUE(params.ok());
    EXPECT_EQ(params->size(), model.LayerParamCount(l));
  }
  EXPECT_TRUE(dp.GatherLayerParams(9).status().IsInvalidArgument());
}

TEST(ShardedDpTest, MultiRankMatchesSingleRank) {
  // §3.2's transparency-of-scale: with the same global batch, 4-rank
  // ZeRO-sharded training must match single-rank training (same data, same
  // math) up to floating-point summation order.
  train::SyntheticRegression dataset(16, 32, 4, 99);
  std::vector<std::vector<float>> single_params, multi_params;
  double single_loss = 0, multi_loss = 0;
  for (const int world : {1, 4}) {
    mem::HierarchicalMemory memory(MemoryOptions());
    core::Allocator allocator(&memory);
    const train::MlpModel model({{16, 32, 4}});
    ShardedDpOptions options = DpOptions(world);
    // Keep the global batch constant: world * batch_per_rank = 32.
    options.batch_per_rank = 32 / world;
    ShardedDataParallel dp(&allocator, &model, options);
    ASSERT_TRUE(dp.Init().ok());
    auto report = dp.Train(dataset, 60);
    ASSERT_TRUE(report.ok());
    auto& params = world == 1 ? single_params : multi_params;
    for (int l = 0; l < model.num_layers(); ++l) {
      auto gathered = dp.GatherLayerParams(l);
      ASSERT_TRUE(gathered.ok());
      params.push_back(*gathered);
    }
    (world == 1 ? single_loss : multi_loss) = report->final_train_loss;
  }
  ASSERT_EQ(single_params.size(), multi_params.size());
  double max_delta = 0;
  for (size_t l = 0; l < single_params.size(); ++l) {
    ASSERT_EQ(single_params[l].size(), multi_params[l].size());
    for (size_t i = 0; i < single_params[l].size(); ++i) {
      max_delta = std::max(
          max_delta,
          double(std::abs(single_params[l][i] - multi_params[l][i])));
    }
  }
  EXPECT_LT(max_delta, 5e-3) << "sharded result diverged from single-rank";
  EXPECT_NEAR(single_loss, multi_loss, 0.02);
}

TEST(ShardedDpTest, WorksWithTransformer) {
  mem::HierarchicalMemory memory(MemoryOptions());
  core::Allocator allocator(&memory);
  train::TransformerConfig config;
  config.seq_len = 4;
  config.d_model = 8;
  config.num_heads = 2;
  config.d_ffn = 16;
  config.num_blocks = 2;
  config.out_dim = 2;
  const train::TinyTransformer model(config);
  train::SyntheticRegression dataset(model.InputSize(), 16,
                                     model.OutputSize(), 99);
  ShardedDpOptions options = DpOptions(2);
  options.batch_per_rank = 8;
  ShardedDataParallel dp(&allocator, &model, options);
  ASSERT_TRUE(dp.Init().ok());
  auto report = dp.Train(dataset, 80);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_LT(report->final_train_loss, report->losses.front());
}

TEST(ShardedDpTest, GpuStagingMatchesUnstagedResults) {
  // Staging the gathered parameters through per-rank fast-tier arenas
  // (fp32, page-granular) must not change the math — and must actually
  // drive page movement on every rank.
  train::SyntheticRegression dataset(16, 32, 4, 99);
  std::vector<float> unstaged_params, staged_params;
  for (const bool staging : {false, true}) {
    mem::HierarchicalMemory memory(MemoryOptions());
    core::Allocator allocator(&memory);
    const train::MlpModel model({{16, 32, 4}});
    ShardedDpOptions options = DpOptions(2);
    options.rank_gpu_capacity_bytes = staging ? (2ull << 20) : 0;
    ShardedDataParallel dp(&allocator, &model, options);
    ASSERT_TRUE(dp.Init().ok());
    auto report = dp.Train(dataset, 40);
    ASSERT_TRUE(report.ok()) << report.status();
    auto params = dp.GatherLayerParams(0);
    ASSERT_TRUE(params.ok());
    (staging ? staged_params : unstaged_params) = *params;
  }
  ASSERT_EQ(staged_params.size(), unstaged_params.size());
  for (size_t i = 0; i < staged_params.size(); ++i) {
    EXPECT_EQ(staged_params[i], unstaged_params[i]) << i;  // fp32: exact.
  }
}

TEST(ShardedDpTest, Stage1MatchesStage3) {
  // Stage 1 (optimizer-only sharding) and stage 3 (full sharding) differ
  // in memory and communication, never in math.
  train::SyntheticRegression dataset(16, 32, 4, 99);
  std::vector<float> stage1_params, stage3_params;
  uint64_t stage1_bytes = 0, stage3_bytes = 0;
  for (const ZeroStage stage : {ZeroStage::kStage1, ZeroStage::kStage3}) {
    mem::HierarchicalMemory memory(MemoryOptions());
    core::Allocator allocator(&memory);
    const train::MlpModel model({{16, 32, 4}});
    ShardedDpOptions options = DpOptions(4);
    options.stage = stage;
    ShardedDataParallel dp(&allocator, &model, options);
    ASSERT_TRUE(dp.Init().ok());
    const uint64_t bytes = allocator.allocated_bytes();
    auto report = dp.Train(dataset, 50);
    ASSERT_TRUE(report.ok()) << report.status();
    auto params = dp.GatherLayerParams(0);
    ASSERT_TRUE(params.ok());
    if (stage == ZeroStage::kStage1) {
      stage1_params = *params;
      stage1_bytes = bytes;
    } else {
      stage3_params = *params;
      stage3_bytes = bytes;
    }
  }
  ASSERT_EQ(stage1_params.size(), stage3_params.size());
  for (size_t i = 0; i < stage1_params.size(); ++i) {
    EXPECT_NEAR(stage1_params[i], stage3_params[i], 2e-3) << i;
  }
  // Stage 1 keeps a full parameter replica per rank: strictly more memory.
  EXPECT_GT(stage1_bytes, stage3_bytes);
}

TEST(ShardedDpTest, TrainBeforeInitFails) {
  mem::HierarchicalMemory memory(MemoryOptions());
  core::Allocator allocator(&memory);
  const train::MlpModel model({{4, 4}});
  ShardedDataParallel dp(&allocator, &model, DpOptions(2));
  train::SyntheticRegression dataset(4, 8, 4, 99);
  EXPECT_EQ(dp.Train(dataset, 1).status().code(),
            util::StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace angelptm::dist
