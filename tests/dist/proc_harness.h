#ifndef ANGELPTM_TESTS_DIST_PROC_HARNESS_H_
#define ANGELPTM_TESTS_DIST_PROC_HARNESS_H_

#include <sys/types.h>

#include <string>
#include <thread>
#include <vector>

namespace angelptm::testing {

/// One child process of a multi-process test job.
struct ProcSpec {
  /// argv[0] is the binary path.
  std::vector<std::string> argv;
  /// Extra KEY=VALUE environment entries appended to the parent's.
  std::vector<std::string> env;
};

struct ProcResult {
  /// Exit code when the child exited normally, -1 otherwise.
  int exit_code = -1;
  /// Terminating signal when the child was killed, 0 otherwise.
  int term_signal = 0;
  /// True when WaitAll's deadline expired and the harness SIGKILLed it.
  bool timed_out = false;
};

/// Reusable multi-process fixture: forks/execs a set of child processes
/// (typically N ranks of tools/angel_worker), multiplexes their combined
/// stdout+stderr onto the test's stderr with "[rank N] " line prefixes
/// (and captures it per child), can SIGKILL a chosen child mid-run, and
/// collects exit codes under a deadline — a hung job fails the test
/// instead of hanging ctest.
class ProcHarness {
 public:
  ProcHarness() = default;
  ~ProcHarness();

  ProcHarness(const ProcHarness&) = delete;
  ProcHarness& operator=(const ProcHarness&) = delete;

  /// Forks and execs every spec. Call at most once per harness.
  void Launch(const std::vector<ProcSpec>& specs);

  /// Sends `sig` to child `index` (no-op if it already exited).
  void Kill(int index, int sig);

  /// True once child `index` has been reaped.
  bool Exited(int index);

  /// Blocks until every child exited or `deadline_ms` elapsed; stragglers
  /// are SIGKILLed and marked timed_out. Joins the output reader, so after
  /// this returns output() is complete and stable.
  std::vector<ProcResult> WaitAll(int deadline_ms);

  /// Captured stdout+stderr of child `index` (prefix-free). Complete only
  /// after WaitAll.
  const std::string& output(int index) const { return outputs_[index]; }

  pid_t pid(int index) const { return pids_[index]; }

 private:
  void ReadLoop();
  void Reap(int index, int status);

  std::vector<pid_t> pids_;
  std::vector<int> pipe_fds_;  // Read ends; -1 once closed.
  std::vector<std::string> outputs_;
  std::vector<std::string> partial_lines_;
  std::vector<ProcResult> results_;
  std::vector<bool> reaped_;
  std::thread reader_;
};

/// Path of the angel_worker binary: the ANGEL_WORKER_BIN environment
/// variable when set, else the build-time location baked in by CMake.
std::string WorkerBinary();

}  // namespace angelptm::testing

#endif  // ANGELPTM_TESTS_DIST_PROC_HARNESS_H_
