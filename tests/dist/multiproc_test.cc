// Real multi-process integration tests: N forked angel_worker ranks over
// Unix-domain sockets, driven by the ProcHarness fixture. These are the
// acceptance tests of DESIGN.md §14 — socket training is bitwise-identical
// to in-process training, and a SIGKILLed rank gang-restarts from the
// latest shard checkpoint onto the same trajectory.

#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dist/proc_harness.h"
#include "dist/shard_checkpoint.h"

namespace angelptm {
namespace {

namespace fs = std::filesystem;

class MultiProcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char pattern[] = "/tmp/aptm-mp-XXXXXX";
    ASSERT_NE(::mkdtemp(pattern), nullptr);
    dir_ = pattern;
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string Rendezvous(const std::string& tag) const {
    return dir_ + "/" + tag + ".sock";
  }

  static std::string ReadFile(const std::string& path) {
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }

  /// argv for one pg-mode worker rank.
  static testing::ProcSpec WorkerSpec(
      int rank, int world, const std::string& rendezvous,
      const std::vector<std::string>& extra) {
    testing::ProcSpec spec;
    spec.argv = {testing::WorkerBinary(),
                 "--rank=" + std::to_string(rank),
                 "--world=" + std::to_string(world),
                 "--rendezvous=" + rendezvous};
    spec.argv.insert(spec.argv.end(), extra.begin(), extra.end());
    return spec;
  }

  std::string dir_;
};

// Acceptance criterion 1: a 4-rank multi-process run produces bitwise
// identical losses, validation loss, and final parameters to the
// single-process run (both on a pinned 1-thread compute pool; both result
// files spell every float as raw bits, so equality is string equality).
TEST_F(MultiProcTest, FourRankBitwiseMatchesSingleProcess) {
  const std::string reference_file = dir_ + "/inproc.txt";
  const std::string socket_file = dir_ + "/pg.txt";
  const std::vector<std::string> shape = {"--steps=8", "--seed=424242",
                                          "--batch-per-rank=4"};

  // Reference: the whole 4-rank world in one process (thread backend).
  {
    testing::ProcHarness harness;
    testing::ProcSpec spec;
    spec.argv = {testing::WorkerBinary(), "--backend=inproc", "--world=4",
                 "--result-file=" + reference_file};
    spec.argv.insert(spec.argv.end(), shape.begin(), shape.end());
    harness.Launch({spec});
    const auto results = harness.WaitAll(60000);
    ASSERT_EQ(results[0].exit_code, 0) << harness.output(0);
  }

  // Same job as 4 real processes over sockets.
  {
    testing::ProcHarness harness;
    std::vector<testing::ProcSpec> specs;
    for (int r = 0; r < 4; ++r) {
      auto extra = shape;
      if (r == 0) extra.push_back("--result-file=" + socket_file);
      specs.push_back(WorkerSpec(r, 4, Rendezvous("bitwise"), extra));
    }
    harness.Launch(specs);
    const auto results = harness.WaitAll(60000);
    for (int r = 0; r < 4; ++r) {
      ASSERT_EQ(results[r].exit_code, 0)
          << "rank " << r << ":\n" << harness.output(r);
    }
  }

  const std::string reference = ReadFile(reference_file);
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(reference, ReadFile(socket_file))
      << "socket run diverged from the in-process run";
}

// Acceptance criterion 2: SIGKILL one rank mid-training; the survivors
// detect the loss (exit 42), a gang restart resumes every rank from the
// newest step all ranks have on disk, and the recovered run lands on the
// fault-free twin's exact final parameters.
TEST_F(MultiProcTest, KillOneRankRecoversFromCheckpoint) {
  const int world = 4;
  const int steps = 60;
  const int every = 4;
  // Big enough layers + single-thread compute to keep the job running for
  // hundreds of milliseconds: the kill below must land mid-training.
  const std::vector<std::string> shape = {
      "--steps=" + std::to_string(steps), "--seed=99",
      "--batch-per-rank=16",  "--dims=64,128,128,64,8"};

  // Fault-free twin (in-process; bitwise-equal to a fault-free 4-rank
  // socket run by the previous test's property).
  const std::string twin_file = dir_ + "/twin.txt";
  {
    testing::ProcHarness harness;
    testing::ProcSpec spec;
    spec.argv = {testing::WorkerBinary(), "--backend=inproc",
                 "--world=" + std::to_string(world),
                 "--result-file=" + twin_file};
    spec.argv.insert(spec.argv.end(), shape.begin(), shape.end());
    harness.Launch({spec});
    ASSERT_EQ(harness.WaitAll(120000)[0].exit_code, 0) << harness.output(0);
  }

  const std::string ckpt_dir = dir_ + "/ckpt";
  const std::string result_file = dir_ + "/recovered.txt";
  auto specs_for = [&](bool with_result) {
    std::vector<testing::ProcSpec> specs;
    for (int r = 0; r < world; ++r) {
      std::vector<std::string> extra = shape;
      extra.push_back("--checkpoint-dir=" + ckpt_dir);
      extra.push_back("--checkpoint-every=" + std::to_string(every));
      if (with_result && r == 0) {
        extra.push_back("--result-file=" + result_file);
      }
      specs.push_back(WorkerSpec(r, world, Rendezvous("recover"), extra));
    }
    return specs;
  };

  // Run 1: launch, wait until rank 1 has completed at least 2 checkpoint
  // intervals (its step-8 shard file exists), then SIGKILL it.
  const int victim = 1;
  {
    testing::ProcHarness harness;
    harness.Launch(specs_for(false));
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    bool armed = false;
    while (std::chrono::steady_clock::now() < deadline) {
      auto latest = dist::LatestShardStep(ckpt_dir, victim);
      ASSERT_TRUE(latest.ok()) << latest.status();
      if (*latest >= 2 * every) {
        armed = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_TRUE(armed) << "no checkpoint appeared within the deadline";
    harness.Kill(victim, SIGKILL);
    const auto results = harness.WaitAll(60000);
    ASSERT_EQ(results[victim].term_signal, SIGKILL)
        << "victim finished before the kill landed — job too fast for "
           "this machine?\n" << harness.output(victim);
    int peer_loss_exits = 0;
    for (int r = 0; r < world; ++r) {
      if (r == victim) continue;
      EXPECT_FALSE(results[r].timed_out) << "rank " << r << " hung";
      // Survivors must fail-stop with the peer-loss code, never "success".
      EXPECT_EQ(results[r].exit_code, 42)
          << "rank " << r << ":\n" << harness.output(r);
      if (results[r].exit_code == 42) ++peer_loss_exits;
    }
    ASSERT_GT(peer_loss_exits, 0);
  }

  // Run 2: gang restart. Every rank re-inits from the seed and resumes
  // from the newest common checkpoint step, then finishes the job.
  {
    testing::ProcHarness harness;
    harness.Launch(specs_for(true));
    const auto results = harness.WaitAll(120000);
    for (int r = 0; r < world; ++r) {
      ASSERT_EQ(results[r].exit_code, 0)
          << "rank " << r << ":\n" << harness.output(r);
    }
    // The worker logs the resume point; it must be a real resume.
    EXPECT_NE(harness.output(0).find("resumed"), std::string::npos);
  }

  // The recovered run's final parameters equal the fault-free twin's, bit
  // for bit (losses recorded before the resume point are zeroed in the
  // recovered file, so compare the "layer" lines only).
  auto layer_lines = [](const std::string& text) {
    std::vector<std::string> lines;
    std::stringstream stream(text);
    std::string line;
    while (std::getline(stream, line)) {
      if (line.rfind("layer ", 0) == 0) lines.push_back(line);
    }
    return lines;
  };
  const auto twin_layers = layer_lines(ReadFile(twin_file));
  const auto recovered_layers = layer_lines(ReadFile(result_file));
  ASSERT_FALSE(twin_layers.empty());
  ASSERT_EQ(recovered_layers.size(), twin_layers.size());
  for (size_t l = 0; l < twin_layers.size(); ++l) {
    EXPECT_EQ(recovered_layers[l], twin_layers[l])
        << "layer " << l << " diverged after recovery";
  }
}

// The harness itself: deadline enforcement reaps a hung child.
TEST_F(MultiProcTest, HarnessDeadlineKillsStragglers) {
  // A rank 0 with world=2 and no rank 1 blocks in rendezvous (its connect
  // timeout is far beyond the harness deadline).
  testing::ProcHarness harness;
  harness.Launch({WorkerSpec(0, 2, Rendezvous("hung"), {"--steps=1"})});
  const auto results = harness.WaitAll(1000);
  EXPECT_TRUE(results[0].timed_out);
  EXPECT_EQ(results[0].term_signal, SIGKILL);
}

// Exit code contract: bad flags exit 2 (the launcher can distinguish
// usage errors from peer loss from real failures).
TEST_F(MultiProcTest, WorkerRejectsBadUsage) {
  testing::ProcHarness harness;
  harness.Launch({{{testing::WorkerBinary(), "--no-such-flag=1"}, {}}});
  EXPECT_EQ(harness.WaitAll(10000)[0].exit_code, 2);
}

}  // namespace
}  // namespace angelptm
