#include "dist/shard_checkpoint.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/fault_injector.h"

namespace angelptm::dist {
namespace {

namespace fs = std::filesystem;

class ShardCheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::FaultInjector::Instance().Reset();
    char pattern[] = "/tmp/aptm-sc-XXXXXX";
    ASSERT_NE(::mkdtemp(pattern), nullptr);
    dir_ = pattern;
  }
  void TearDown() override {
    util::FaultInjector::Instance().Reset();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  static ShardState MakeState(int rank, int step) {
    ShardState state;
    state.rank = rank;
    state.world_size = 4;
    state.step = step;
    state.layers.resize(2);
    for (size_t l = 0; l < state.layers.size(); ++l) {
      auto& layer = state.layers[l];
      layer.p32.resize(16 + l);
      for (size_t i = 0; i < layer.p32.size(); ++i) {
        layer.p32[i] = float(rank * 1000 + step * 10 + int(l)) + float(i);
      }
      layer.slots.resize(2, std::vector<float>(16 + l, float(step)));
    }
    return state;
  }

  std::string dir_;
};

TEST_F(ShardCheckpointTest, RoundTripPreservesEveryBit) {
  const ShardState saved = MakeState(2, 7);
  ASSERT_TRUE(SaveShardState(dir_, saved, 3).ok());

  auto latest = LatestShardStep(dir_, 2);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, 7);

  auto loaded = LoadShardState(dir_, 2, 7);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->rank, 2);
  EXPECT_EQ(loaded->world_size, 4);
  EXPECT_EQ(loaded->step, 7);
  ASSERT_EQ(loaded->layers.size(), saved.layers.size());
  for (size_t l = 0; l < saved.layers.size(); ++l) {
    EXPECT_EQ(loaded->layers[l].p32, saved.layers[l].p32);
    EXPECT_EQ(loaded->layers[l].slots, saved.layers[l].slots);
  }
}

TEST_F(ShardCheckpointTest, RanksDoNotCollide) {
  ASSERT_TRUE(SaveShardState(dir_, MakeState(0, 5), 3).ok());
  ASSERT_TRUE(SaveShardState(dir_, MakeState(1, 10), 3).ok());
  EXPECT_EQ(*LatestShardStep(dir_, 0), 5);
  EXPECT_EQ(*LatestShardStep(dir_, 1), 10);
  EXPECT_EQ(*LatestShardStep(dir_, 2), 0);  // No file for rank 2.
}

TEST_F(ShardCheckpointTest, MissingDirectoryMeansFreshStart) {
  EXPECT_EQ(*LatestShardStep(dir_ + "/nope", 0), 0);
  EXPECT_TRUE(LoadShardState(dir_, 0, 3).status().IsNotFound());
}

TEST_F(ShardCheckpointTest, RotationKeepsNewestPerRank) {
  for (int step = 1; step <= 5; ++step) {
    ASSERT_TRUE(SaveShardState(dir_, MakeState(0, step), 2).ok());
  }
  ASSERT_TRUE(SaveShardState(dir_, MakeState(1, 1), 2).ok());
  // Rank 0 keeps only steps 4 and 5; rank 1's file is untouched.
  EXPECT_FALSE(LoadShardState(dir_, 0, 3).ok());
  EXPECT_TRUE(LoadShardState(dir_, 0, 4).ok());
  EXPECT_TRUE(LoadShardState(dir_, 0, 5).ok());
  EXPECT_TRUE(LoadShardState(dir_, 1, 1).ok());
}

TEST_F(ShardCheckpointTest, CorruptionIsRejectedLoudly) {
  ASSERT_TRUE(SaveShardState(dir_, MakeState(0, 3), 3).ok());
  const std::string path = dir_ + "/shard-r00000-s000000003.ckpt";
  {
    // Flip one byte in the middle of the payload.
    std::fstream file(path, std::ios::in | std::ios::out |
                                std::ios::binary);
    ASSERT_TRUE(file.good());
    file.seekp(40);
    char byte = 0;
    file.read(&byte, 1);
    file.seekp(40);
    byte = char(byte ^ 0x40);
    file.write(&byte, 1);
  }
  const auto loaded = LoadShardState(dir_, 0, 3);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("checksum"), std::string::npos);
}

TEST_F(ShardCheckpointTest, TruncationIsRejected) {
  ASSERT_TRUE(SaveShardState(dir_, MakeState(0, 3), 3).ok());
  const std::string path = dir_ + "/shard-r00000-s000000003.ckpt";
  fs::resize_file(path, fs::file_size(path) / 2);
  EXPECT_FALSE(LoadShardState(dir_, 0, 3).ok());
}

TEST_F(ShardCheckpointTest, InvalidStepRejected) {
  EXPECT_TRUE(SaveShardState(dir_, MakeState(0, 0), 3)
                  .IsInvalidArgument());
}

// A fault at the write or rename site must leave no half-written file the
// loader would trust — the previous checkpoint (or fresh start) wins.
TEST_F(ShardCheckpointTest, InjectedWriteFaultLeavesNoTrace) {
  auto& injector = util::FaultInjector::Instance();
  ASSERT_TRUE(SaveShardState(dir_, MakeState(0, 2), 3).ok());

  util::FaultRule rule;
  rule.nth_call = 1;
  injector.Arm("shard_ckpt.write", rule);
  EXPECT_FALSE(SaveShardState(dir_, MakeState(0, 4), 3).ok());
  injector.Reset();
  EXPECT_EQ(*LatestShardStep(dir_, 0), 2);

  injector.Arm("shard_ckpt.rename", rule);
  EXPECT_FALSE(SaveShardState(dir_, MakeState(0, 4), 3).ok());
  injector.Reset();
  EXPECT_EQ(*LatestShardStep(dir_, 0), 2);
  EXPECT_TRUE(LoadShardState(dir_, 0, 2).ok());

  // With the faults cleared the next interval saves normally.
  EXPECT_TRUE(SaveShardState(dir_, MakeState(0, 4), 3).ok());
  EXPECT_EQ(*LatestShardStep(dir_, 0), 4);
}

}  // namespace
}  // namespace angelptm::dist
