#include "dist/proc_harness.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

extern char** environ;

namespace angelptm::testing {

namespace {

[[noreturn]] void Die(const char* what) {
  std::perror(what);
  std::abort();
}

}  // namespace

ProcHarness::~ProcHarness() {
  // A test that forgot WaitAll (or failed mid-way) must not leak children.
  for (size_t i = 0; i < pids_.size(); ++i) {
    if (!reaped_[i]) ::kill(pids_[i], SIGKILL);
  }
  if (reader_.joinable()) reader_.join();
  for (size_t i = 0; i < pids_.size(); ++i) {
    if (!reaped_[i]) {
      int status = 0;
      ::waitpid(pids_[i], &status, 0);
    }
  }
}

void ProcHarness::Launch(const std::vector<ProcSpec>& specs) {
  const size_t n = specs.size();
  pids_.resize(n);
  pipe_fds_.assign(n, -1);
  outputs_.resize(n);
  partial_lines_.resize(n);
  results_.resize(n);
  reaped_.assign(n, false);

  for (size_t i = 0; i < n; ++i) {
    int fds[2];
    if (::pipe(fds) != 0) Die("pipe");
    const pid_t pid = ::fork();
    if (pid < 0) Die("fork");
    if (pid == 0) {
      // Child: combined stdout+stderr into the pipe, then exec.
      ::close(fds[0]);
      ::dup2(fds[1], STDOUT_FILENO);
      ::dup2(fds[1], STDERR_FILENO);
      ::close(fds[1]);
      for (const std::string& kv : specs[i].env) {
        const size_t eq = kv.find('=');
        ::setenv(kv.substr(0, eq).c_str(), kv.substr(eq + 1).c_str(), 1);
      }
      std::vector<char*> argv;
      argv.reserve(specs[i].argv.size() + 1);
      for (const std::string& arg : specs[i].argv) {
        argv.push_back(const_cast<char*>(arg.c_str()));
      }
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      Die("execv");
    }
    ::close(fds[1]);
    ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
    pids_[i] = pid;
    pipe_fds_[i] = fds[0];
  }
  reader_ = std::thread([this] { ReadLoop(); });
}

void ProcHarness::ReadLoop() {
  std::vector<pollfd> fds;
  std::vector<int> index_of;
  for (;;) {
    fds.clear();
    index_of.clear();
    for (size_t i = 0; i < pipe_fds_.size(); ++i) {
      if (pipe_fds_[i] >= 0) {
        fds.push_back({pipe_fds_[i], POLLIN, 0});
        index_of.push_back(int(i));
      }
    }
    if (fds.empty()) return;
    if (::poll(fds.data(), nfds_t(fds.size()), 200) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    for (size_t f = 0; f < fds.size(); ++f) {
      if ((fds[f].revents & (POLLIN | POLLHUP)) == 0) continue;
      const int i = index_of[f];
      char buf[4096];
      const ssize_t got = ::read(pipe_fds_[i], buf, sizeof(buf));
      if (got > 0) {
        outputs_[i].append(buf, size_t(got));
        partial_lines_[i].append(buf, size_t(got));
        // Forward complete lines with a rank prefix so interleaved child
        // output stays attributable in the ctest log.
        size_t nl;
        while ((nl = partial_lines_[i].find('\n')) != std::string::npos) {
          std::fprintf(stderr, "[rank %d] %.*s\n", i, int(nl),
                       partial_lines_[i].data());
          partial_lines_[i].erase(0, nl + 1);
        }
      } else if (got == 0 || (got < 0 && errno != EAGAIN && errno != EINTR)) {
        ::close(pipe_fds_[i]);
        pipe_fds_[i] = -1;
        if (!partial_lines_[i].empty()) {
          std::fprintf(stderr, "[rank %d] %s\n", i,
                       partial_lines_[i].c_str());
          partial_lines_[i].clear();
        }
      }
    }
  }
}

void ProcHarness::Kill(int index, int sig) {
  if (!reaped_[index]) ::kill(pids_[index], sig);
}

void ProcHarness::Reap(int index, int status) {
  reaped_[index] = true;
  if (WIFEXITED(status)) {
    results_[index].exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    results_[index].term_signal = WTERMSIG(status);
  }
}

bool ProcHarness::Exited(int index) {
  if (reaped_[index]) return true;
  int status = 0;
  if (::waitpid(pids_[index], &status, WNOHANG) == pids_[index]) {
    Reap(index, status);
    return true;
  }
  return false;
}

std::vector<ProcResult> ProcHarness::WaitAll(int deadline_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  for (;;) {
    bool all = true;
    for (size_t i = 0; i < pids_.size(); ++i) {
      if (!Exited(int(i))) all = false;
    }
    if (all) break;
    if (std::chrono::steady_clock::now() >= deadline) {
      for (size_t i = 0; i < pids_.size(); ++i) {
        if (!reaped_[i]) {
          results_[i].timed_out = true;
          ::kill(pids_[i], SIGKILL);
          int status = 0;
          ::waitpid(pids_[i], &status, 0);
          Reap(int(i), status);
        }
      }
      break;
    }
    ::usleep(2000);
  }
  if (reader_.joinable()) reader_.join();
  return results_;
}

std::string WorkerBinary() {
  if (const char* env = std::getenv("ANGEL_WORKER_BIN")) return env;
#ifdef ANGEL_WORKER_BIN_PATH
  return ANGEL_WORKER_BIN_PATH;
#else
  return "angel_worker";
#endif
}

}  // namespace angelptm::testing
