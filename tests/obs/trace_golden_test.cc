// Golden end-to-end trace test (ISSUE acceptance): a real training run with
// ANGELPTM_TRACE set must produce a Chrome trace_event JSON file whose
// events are balanced begin/end pairs per thread and cover at least four
// instrumented subsystems.

#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/trace.h"
#include "train/engine_trainer.h"
#include "train/mlp.h"

namespace angelptm::obs {
namespace {

struct TraceEvent {
  char ph = 0;
  int tid = -1;
  std::string cat;
};

/// Parses the one-event-per-line format the exporter writes. Fails the test
/// on any line that looks like an event but does not carry the expected
/// fields.
std::vector<TraceEvent> ParseEvents(const std::string& json) {
  std::vector<TraceEvent> events;
  std::istringstream lines(json);
  std::string line;
  while (std::getline(lines, line)) {
    const size_t ph_pos = line.find("\"ph\":\"");
    if (ph_pos == std::string::npos) continue;
    TraceEvent event;
    event.ph = line[ph_pos + 6];
    const size_t tid_pos = line.find("\"tid\":");
    EXPECT_NE(tid_pos, std::string::npos) << line;
    event.tid = std::atoi(line.c_str() + tid_pos + 6);
    const size_t cat_pos = line.find("\"cat\":\"");
    EXPECT_NE(cat_pos, std::string::npos) << line;
    const size_t cat_end = line.find('"', cat_pos + 7);
    event.cat = line.substr(cat_pos + 7, cat_end - cat_pos - 7);
    events.push_back(event);
  }
  return events;
}

TEST(TraceGoldenTest, TrainingRunEmitsBalancedMultiSubsystemTrace) {
  const std::string path = "/tmp/angelptm_trace_golden_" +
                           std::to_string(::getpid()) + ".json";
  // The production enablement path: the environment variable, picked up by
  // InitTracingFromEnv (at process init in a fresh binary; re-invoked here
  // because the variable is set after init).
  ASSERT_EQ(::setenv("ANGELPTM_TRACE", path.c_str(), 1), 0);
  ASSERT_TRUE(InitTracingFromEnv());
  ASSERT_TRUE(TracingEnabled());

  {
    // Lock-free training with fp32 masters on the file-backed SSD tier:
    // touches the trainer, the engine, the updater, the SSD tier, and the
    // paging layers in one small run.
    const train::MlpModel model({{16, 32, 4}});
    train::EngineTrainerOptions options;
    options.engine.memory.page_bytes = 16 * 1024;
    options.engine.memory.gpu_capacity_bytes = 8 * 16 * 1024;
    options.engine.memory.cpu_capacity_bytes = 32ull << 20;
    options.engine.memory.ssd_capacity_bytes = 128 * 16 * 1024;
    options.engine.memory.ssd_path = "/tmp/angelptm_trace_golden_ssd_" +
                                     std::to_string(::getpid()) + ".bin";
    options.engine.adam.learning_rate = 3e-3;
    options.engine.lock_free = true;
    options.engine.master_device = mem::DeviceKind::kSsd;
    options.batch_size = 16;
    options.seed = 7;
    train::EngineTrainer trainer(&model, options);
    ASSERT_TRUE(trainer.Init().ok());
    train::SyntheticRegression dataset(16, 16, 4, 99);
    auto report = trainer.Train(dataset, 10);
    ASSERT_TRUE(report.ok()) << report.status();
    // The structured report saw the same subsystems the trace did.
    EXPECT_GT(report->telemetry.updater.updates_applied, 0u);
    EXPECT_TRUE(report->telemetry.has_ssd);
    EXPECT_GT(report->telemetry.ssd.bytes_written, 0u);
    EXPECT_GT(report->telemetry.fwd_us.count, 0u);
  }

  ASSERT_TRUE(StopTracing().ok());
  ASSERT_EQ(::unsetenv("ANGELPTM_TRACE"), 0);

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();

  // Structural validity: the envelope is present and every brace/bracket
  // closes (the exporter never puts braces inside strings).
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"otherData\":{\"dropped_spans\":"),
            std::string::npos);
  long braces = 0, brackets = 0;
  for (const char c : json) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);

  const std::vector<TraceEvent> events = ParseEvents(json);
  ASSERT_GT(events.size(), 0u);

  // Balanced, properly nested B/E pairs per thread.
  std::map<int, int> depth;
  std::set<std::string> categories;
  for (const TraceEvent& event : events) {
    ASSERT_TRUE(event.ph == 'B' || event.ph == 'E') << event.ph;
    ASSERT_GE(event.tid, 0);
    if (event.ph == 'B') {
      depth[event.tid] += 1;
      categories.insert(event.cat);
    } else {
      depth[event.tid] -= 1;
      ASSERT_GE(depth[event.tid], 0) << "unbalanced E on tid " << event.tid;
    }
  }
  for (const auto& [tid, d] : depth) {
    EXPECT_EQ(d, 0) << "unclosed spans on tid " << tid;
  }

  // Spans from at least four instrumented subsystems (the acceptance
  // criterion), with the core ones named explicitly.
  EXPECT_GE(categories.size(), 4u);
  EXPECT_TRUE(categories.count("train")) << "missing train spans";
  EXPECT_TRUE(categories.count("engine")) << "missing engine spans";
  EXPECT_TRUE(categories.count("updater")) << "missing updater spans";
  EXPECT_TRUE(categories.count("ssd")) << "missing ssd spans";

  ::unlink(path.c_str());
}

}  // namespace
}  // namespace angelptm::obs
