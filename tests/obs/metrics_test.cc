#include "obs/metrics.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/parallel_for.h"

namespace angelptm::obs {
namespace {

TEST(MetricsRegistryTest, HandlesAreDeduplicatedByName) {
  Registry& registry = Registry::Instance();
  Counter* a = registry.GetCounter("test/dedup_counter");
  Counter* b = registry.GetCounter("test/dedup_counter");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, registry.GetCounter("test/dedup_counter_other"));
  // The same name in different metric kinds names different series.
  Gauge* g = registry.GetGauge("test/dedup_counter");
  Histogram* h = registry.GetHistogram("test/dedup_counter");
  EXPECT_NE(static_cast<void*>(a), static_cast<void*>(g));
  EXPECT_NE(static_cast<void*>(g), static_cast<void*>(h));
}

TEST(MetricsRegistryTest, CounterExactUnderConcurrentHammering) {
  Counter* counter = Registry::Instance().GetCounter("test/hammer_counter");
  counter->Reset();
  constexpr size_t kIters = 200000;
  util::ParallelForChunks(util::ComputePool(), 0, kIters, 1000,
                          [&](size_t, size_t lo, size_t hi) {
                            for (size_t i = lo; i < hi; ++i) {
                              counter->Increment();
                            }
                          });
  EXPECT_EQ(counter->Value(), kIters);
}

TEST(MetricsRegistryTest, GaugeNetsToZeroUnderConcurrentAddSub) {
  Gauge* gauge = Registry::Instance().GetGauge("test/hammer_gauge");
  gauge->Reset();
  constexpr size_t kIters = 100000;
  util::ParallelForChunks(util::ComputePool(), 0, kIters, 500,
                          [&](size_t, size_t lo, size_t hi) {
                            for (size_t i = lo; i < hi; ++i) {
                              gauge->Add(3);
                              gauge->Add(-3);
                            }
                          });
  EXPECT_EQ(gauge->Value(), 0);
  gauge->Set(-42);
  EXPECT_EQ(gauge->Value(), -42);
}

TEST(MetricsRegistryTest, HistogramCountExactUnderConcurrentRecords) {
  Histogram* histogram =
      Registry::Instance().GetHistogram("test/hammer_histogram");
  histogram->Reset();
  constexpr size_t kIters = 100000;
  util::ParallelForChunks(util::ComputePool(), 0, kIters, 500,
                          [&](size_t, size_t lo, size_t hi) {
                            for (size_t i = lo; i < hi; ++i) {
                              histogram->Record(i % 13);
                            }
                          });
  const HistogramData data = histogram->Snapshot();
  EXPECT_EQ(data.count, kIters);
  EXPECT_EQ(data.max, 12u);
  // Every sample landed in exactly one bucket.
  uint64_t total = 0;
  for (const uint64_t bucket : data.buckets) total += bucket;
  EXPECT_EQ(total, kIters);
}

TEST(HistogramBucketTest, ExponentialBoundaries) {
  // Bucket 0 holds the value 0; bucket i holds [2^(i-1), 2^i).
  EXPECT_EQ(HistogramBucketIndex(0), 0u);
  EXPECT_EQ(HistogramBucketIndex(1), 1u);
  EXPECT_EQ(HistogramBucketIndex(2), 2u);
  EXPECT_EQ(HistogramBucketIndex(3), 2u);
  EXPECT_EQ(HistogramBucketIndex(4), 3u);
  EXPECT_EQ(HistogramBucketIndex(7), 3u);
  EXPECT_EQ(HistogramBucketIndex(8), 4u);
  EXPECT_EQ(HistogramBucketIndex(~uint64_t{0}), 64u);

  for (size_t bucket = 1; bucket < kNumHistogramBuckets; ++bucket) {
    // The stated bounds are tight: both land in the bucket, and the
    // neighbours land outside.
    EXPECT_EQ(HistogramBucketIndex(HistogramBucketLowerBound(bucket)), bucket);
    EXPECT_EQ(HistogramBucketIndex(HistogramBucketUpperBound(bucket)), bucket);
    EXPECT_EQ(HistogramBucketIndex(HistogramBucketLowerBound(bucket) - 1),
              bucket - 1);
  }
  EXPECT_EQ(HistogramBucketLowerBound(0), 0u);
  EXPECT_EQ(HistogramBucketUpperBound(0), 0u);
  EXPECT_EQ(HistogramBucketLowerBound(5), 16u);
  EXPECT_EQ(HistogramBucketUpperBound(5), 31u);
}

TEST(HistogramDataTest, RecordMergeAndStats) {
  HistogramData h;
  h.Record(0);
  h.Record(1);
  h.Record(5);
  h.Record(100);
  EXPECT_EQ(h.count, 4u);
  EXPECT_EQ(h.sum, 106u);
  EXPECT_EQ(h.max, 100u);
  EXPECT_DOUBLE_EQ(h.Mean(), 106.0 / 4.0);
  EXPECT_EQ(h.buckets[0], 1u);  // value 0
  EXPECT_EQ(h.buckets[1], 1u);  // value 1
  EXPECT_EQ(h.buckets[3], 1u);  // value 5 in [4, 8)
  EXPECT_EQ(h.buckets[7], 1u);  // value 100 in [64, 128)

  // Percentiles report the inclusive upper bound of the holding bucket.
  EXPECT_EQ(h.Percentile(0.25), 0u);
  EXPECT_EQ(h.Percentile(0.5), 1u);
  EXPECT_EQ(h.Percentile(1.0), 127u);

  HistogramData other;
  other.Record(200);
  h.Merge(other);
  EXPECT_EQ(h.count, 5u);
  EXPECT_EQ(h.max, 200u);

  const std::string summary = h.Summary();
  EXPECT_NE(summary.find("count=5"), std::string::npos);
  const std::string json = h.ToJson();
  EXPECT_NE(json.find("\"count\":5"), std::string::npos);
  EXPECT_NE(json.find("\"max\":200"), std::string::npos);
}

TEST(MetricsRegistryTest, SnapshotIsSortedAndSerializes) {
  Registry& registry = Registry::Instance();
  registry.GetCounter("test/json_b")->Reset();
  registry.GetCounter("test/json_a")->Increment(5);
  registry.GetGauge("test/json_gauge")->Set(-7);
  registry.GetHistogram("test/json_histogram")->Record(3);

  const MetricsSnapshot snapshot = registry.Snapshot();
  for (size_t i = 1; i < snapshot.counters.size(); ++i) {
    EXPECT_LT(snapshot.counters[i - 1].first, snapshot.counters[i].first);
  }
  const std::string json = snapshot.ToJson();
  EXPECT_NE(json.find("\"test/json_a\":5"), std::string::npos);
  EXPECT_NE(json.find("\"test/json_gauge\":-7"), std::string::npos);
  EXPECT_NE(json.find("\"test/json_histogram\":{\"count\":"),
            std::string::npos);
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);

  registry.GetCounter("test/json_a")->Reset();
}

}  // namespace
}  // namespace angelptm::obs
