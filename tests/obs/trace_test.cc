#include "obs/trace.h"

#include <unistd.h>

#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace angelptm::obs {
namespace {

std::string TempPath(const char* tag) {
  return std::string("/tmp/angelptm_trace_test_") + tag + "_" +
         std::to_string(::getpid()) + ".json";
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

size_t CountOccurrences(const std::string& haystack, const std::string& pin) {
  size_t count = 0;
  for (size_t pos = haystack.find(pin); pos != std::string::npos;
       pos = haystack.find(pin, pos + pin.size())) {
    ++count;
  }
  return count;
}

TEST(TraceTest, DisabledByDefaultAndSpansAreFree) {
  ASSERT_FALSE(TracingEnabled());
  { ANGEL_SPAN("test", "noop"); }
  const TraceCounts counts = CurrentTraceCounts();
  EXPECT_EQ(counts.recorded, 0u);
  EXPECT_EQ(counts.dropped, 0u);
  EXPECT_FALSE(StopTracing().ok());  // No session to stop.
}

TEST(TraceTest, StartStopWritesBalancedEvents) {
  const std::string path = TempPath("basic");
  ASSERT_TRUE(StartTracing(path).ok());
  EXPECT_TRUE(TracingEnabled());
  // A second session cannot start while one is active.
  EXPECT_FALSE(StartTracing(TempPath("second")).ok());

  { ANGEL_SPAN("alpha", "first"); }
  { ANGEL_SPAN("beta", "second"); }
  EXPECT_EQ(CurrentTraceCounts().recorded, 2u);

  ASSERT_TRUE(StopTracing().ok());
  EXPECT_FALSE(TracingEnabled());

  const std::string json = ReadFile(path);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"B\""), 2u);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"E\""), 2u);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"second\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_spans\":0"), std::string::npos);
  ::unlink(path.c_str());
}

TEST(TraceTest, NestedSpansEmitProperlyNestedPairs) {
  const std::string path = TempPath("nested");
  ASSERT_TRUE(StartTracing(path).ok());
  {
    ANGEL_SPAN("test", "outer");
    { ANGEL_SPAN("test", "inner"); }
  }
  ASSERT_TRUE(StopTracing().ok());

  const std::string json = ReadFile(path);
  // The inner span completes (and lands in the ring) first, but the
  // exporter reconstructs begin order: B outer, B inner, E inner, E outer.
  const size_t b_outer = json.find("\"ph\":\"B\",\"pid\":1,\"tid\":0");
  ASSERT_NE(b_outer, std::string::npos);
  EXPECT_LT(json.find("\"name\":\"outer\""), json.find("\"name\":\"inner\""));
  const size_t last_e = json.rfind("\"ph\":\"E\"");
  const size_t last_outer = json.rfind("\"name\":\"outer\"");
  EXPECT_LT(last_e, last_outer);  // The final event closes the outer span.
  ::unlink(path.c_str());
}

TEST(TraceTest, RingOverflowKeepsNewestAndCountsDropped) {
  const std::string path = TempPath("overflow");
  ASSERT_TRUE(StartTracing(path, /*ring_capacity=*/4).ok());
  for (int i = 0; i < 10; ++i) {
    ANGEL_SPAN("test", "churn");
  }
  const TraceCounts counts = CurrentTraceCounts();
  EXPECT_EQ(counts.recorded, 4u);
  EXPECT_EQ(counts.dropped, 6u);
  ASSERT_TRUE(StopTracing().ok());

  const std::string json = ReadFile(path);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"B\""), 4u);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"E\""), 4u);
  EXPECT_NE(json.find("\"dropped_spans\":6"), std::string::npos);
  ::unlink(path.c_str());
}

TEST(TraceTest, ThreadsGetDistinctTidsAndBalancedEvents) {
  const std::string path = TempPath("threads");
  ASSERT_TRUE(StartTracing(path).ok());
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 25;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        ANGEL_SPAN("test", "worker");
      }
    });
  }
  for (auto& thread : threads) thread.join();
  ASSERT_TRUE(StopTracing().ok());

  const std::string json = ReadFile(path);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"B\""), size_t(kThreads) * 25);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"E\""), size_t(kThreads) * 25);
  int distinct_tids = 0;
  for (int tid = 0; tid < kThreads; ++tid) {
    const std::string pin = "\"tid\":" + std::to_string(tid) + ",";
    if (CountOccurrences(json, pin) == 2 * kSpansPerThread) ++distinct_tids;
  }
  EXPECT_EQ(distinct_tids, kThreads);
  ::unlink(path.c_str());
}

TEST(TraceTest, RejectsBadSessionConfigs) {
  EXPECT_TRUE(StartTracing("").IsInvalidArgument());
  EXPECT_TRUE(StartTracing(TempPath("zero"), 0).IsInvalidArgument());
  // An unwritable path surfaces at StopTracing, when the file is opened.
  ASSERT_TRUE(StartTracing("/nonexistent_dir/trace.json").ok());
  { ANGEL_SPAN("test", "doomed"); }
  EXPECT_TRUE(StopTracing().IsIoError());
  EXPECT_FALSE(TracingEnabled());  // The failed stop still ended the session.
}

}  // namespace
}  // namespace angelptm::obs
