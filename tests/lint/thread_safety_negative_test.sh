#!/bin/sh
# Proves the thread-safety annotations have teeth (DESIGN.md §10.1): under
# Clang with -Wthread-safety, a write to an ANGEL_GUARDED_BY member without
# holding the lock must FAIL to compile, and the properly locked twin must
# still compile. Exits 77 (ctest SKIP_RETURN_CODE) where Clang is absent —
# GCC compiles the annotations away, so there is nothing to prove there.
set -e

SRC_DIR="${1:-$(dirname "$0")/../../src}"

if ! command -v clang++ > /dev/null 2>&1; then
  echo "thread_safety_negative_test: clang++ not found; skipping"
  exit 77
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

cat > "$TMP/good.cc" << 'EOF'
#include "util/thread_annotations.h"

class Counter {
 public:
  void Bump() {
    angelptm::util::MutexLock lock(mutex_);
    value_ += 1;
  }

 private:
  angelptm::util::Mutex mutex_;
  int value_ ANGEL_GUARDED_BY(mutex_) = 0;
};

int main() {
  Counter c;
  c.Bump();
  return 0;
}
EOF

cat > "$TMP/bad.cc" << 'EOF'
#include "util/thread_annotations.h"

class Counter {
 public:
  void Bump() { value_ += 1; }  // BUG: guarded write without the lock.

 private:
  angelptm::util::Mutex mutex_;
  int value_ ANGEL_GUARDED_BY(mutex_) = 0;
};

int main() {
  Counter c;
  c.Bump();
  return 0;
}
EOF

FLAGS="-std=c++20 -I$SRC_DIR -Wthread-safety -Werror=thread-safety \
-fsyntax-only"

if ! clang++ $FLAGS "$TMP/good.cc" 2> "$TMP/good.err"; then
  echo "FAIL: correctly locked access was rejected:"
  cat "$TMP/good.err"
  exit 1
fi

if clang++ $FLAGS "$TMP/bad.cc" 2> "$TMP/bad.err"; then
  echo "FAIL: unguarded write of a GUARDED_BY member compiled cleanly"
  exit 1
fi
if ! grep -q "thread-safety\|guarded by" "$TMP/bad.err"; then
  echo "FAIL: compile failed for a reason other than thread-safety:"
  cat "$TMP/bad.err"
  exit 1
fi

echo "thread_safety_negative_test: OK (-Wthread-safety rejects the race)"
