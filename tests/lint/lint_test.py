#!/usr/bin/env python3
"""Unit tests for scripts/lint.py (DESIGN.md §10.3).

Runs the linter over two fixture trees: `clean` must produce zero findings
(it exercises the passing form of every rule, including both waiver
spellings), `dirty` must produce exactly the expected finding per rule.
Finally the real repo must lint clean, so a regression in either the rules
or the tree fails here before it fails in CI.

Usage: lint_test.py [--root REPO_ROOT]
"""

import argparse
import os
import subprocess
import sys


def run_lint(lint, src, design):
    return subprocess.run(
        [sys.executable, lint, "--src", src, "--design", design],
        capture_output=True, text=True)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--root", default=os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))))
    args = parser.parse_args()
    lint = os.path.join(args.root, "scripts", "lint.py")
    fixtures = os.path.join(args.root, "tests", "lint", "fixtures")

    failures = []

    def check(name, ok, detail=""):
        print(f"{'ok' if ok else 'FAIL'}: {name}")
        if not ok:
            failures.append(name)
            if detail:
                print(detail)

    clean = run_lint(lint, os.path.join(fixtures, "clean", "src"),
                     os.path.join(fixtures, "clean", "DESIGN.md"))
    check("clean fixture exits 0", clean.returncode == 0,
          clean.stdout + clean.stderr)
    check("clean fixture reports OK", "lint.py: OK" in clean.stdout)

    dirty = run_lint(lint, os.path.join(fixtures, "dirty", "src"),
                     os.path.join(fixtures, "dirty", "DESIGN.md"))
    check("dirty fixture exits 1", dirty.returncode == 1,
          dirty.stdout + dirty.stderr)
    # One finding per violation: raw mutex + unannotated util::Mutex,
    # a declaration without [[nodiscard]], a naked new, an intrinsic
    # include outside src/train/simd/, an unregistered Optimizer subclass,
    # the failpoint drift in both directions (site missing from table,
    # stale table row), three raw std:: locking tokens outside src/util/
    # (the std::mutex member, an unguarded-waived local, and its
    # lock_guard site), and the lock-class drift in all directions
    # (classless mutex, class missing from the table, constant mismatch,
    # stale table row).
    for tag, expected in [("[mutex]", 2), ("[nodiscard]", 1),
                          ("[naked-new]", 1), ("[simd-include]", 1),
                          ("[optimizer-registry]", 1),
                          ("[failpoint]", 2), ("[raw-mutex]", 3),
                          ("[lock-class]", 4)]:
        count = dirty.stdout.count(f": {tag}")  # "[[nodiscard]]" in the
        # message body would double-count a bare substring search.
        check(f"dirty fixture yields {expected} {tag} finding(s)",
              count == expected, dirty.stdout)
    check("stale table row is named", "demo.stale" in dirty.stdout)
    check("undocumented site is named", "demo.undocumented" in dirty.stdout)
    check("undeclared lock class is named", "demo.rogue" in dirty.stdout)
    check("stale lock-class row is named", "demo.stale_lock" in dirty.stdout)
    check("rank-constant mismatch is named", "kMismatch" in dirty.stdout)

    repo = subprocess.run([sys.executable, lint, "--root", args.root],
                          capture_output=True, text=True)
    check("the repo itself lints clean", repo.returncode == 0,
          repo.stdout + repo.stderr)

    if failures:
        print(f"lint_test.py: {len(failures)} check(s) failed",
              file=sys.stderr)
        return 1
    print("lint_test.py: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
