// Lint fixture: a file that satisfies every scripts/lint.py rule, including
// the waiver forms. Never compiled — the linter only reads text.
#ifndef ANGELPTM_TESTS_LINT_FIXTURES_CLEAN_SRC_CLEAN_H_
#define ANGELPTM_TESTS_LINT_FIXTURES_CLEAN_SRC_CLEAN_H_

#include <immintrin.h>  // lint: simd-include (fixture waiver form)
#include <memory>
#include <mutex>

namespace demo {

class Clean {
 public:
  [[nodiscard]] util::Status Flush() ANGEL_EXCLUDES(mutex_);
  [[nodiscard]] static util::Result<int> Count();

 private:
  mutable util::Mutex mutex_{"demo.lock", util::lockrank::kDemoLock};
  int value_ ANGEL_GUARDED_BY(mutex_) = 0;
  // Waiver forms: a raw std::mutex (one waiver covers both the [mutex]
  // declaration rule and [raw-mutex]), a classless util::Mutex, and a
  // leaked singleton.
  std::mutex raw_but_waived_;  // lint: raw-mutex (fixture waiver form)
  util::Mutex classless_;  // lint: unguarded (fixture); // lint: lock-class (fixture)
  std::unique_ptr<int> owned_ = std::make_unique<int>(3);
};

inline int* LeakedSingleton() {
  static int* instance = new int(7);  // lint: naked-new (leaked singleton)
  return instance;
}

inline void Touch() {
  // A mention in a comment must not count: ANGEL_FAULT_CHECK("demo.ghost").
  ANGEL_FAULT_CHECK("demo.flush");
  auto wrapped = std::unique_ptr<int>(new int(1));
  (void)wrapped;
  // Outside src/util/, even lock *sites* on std:: types need the waiver.
  std::lock_guard<std::mutex> lock(LockRef());  // lint: raw-mutex (fixture)
}

// Passing form of the optimizer-registry rule: subclass + a
// RegisterOptimizer call in the same file.
class DemoRule final : public Optimizer {};
inline bool registered = RegisterOptimizer("demo", nullptr);

}  // namespace demo

#endif  // ANGELPTM_TESTS_LINT_FIXTURES_CLEAN_SRC_CLEAN_H_
