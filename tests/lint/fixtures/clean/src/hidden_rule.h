// Lint fixture: the waiver form of the optimizer-registry rule — a
// concrete Optimizer subclass intentionally absent from the factory, in a
// file with no RegisterOptimizer call. Never compiled.
#ifndef ANGELPTM_TESTS_LINT_FIXTURES_CLEAN_SRC_HIDDEN_RULE_H_
#define ANGELPTM_TESTS_LINT_FIXTURES_CLEAN_SRC_HIDDEN_RULE_H_

namespace demo {

class HiddenRule final : public core::Optimizer {};  // lint: optimizer-registry (test-only rule)

}  // namespace demo

#endif  // ANGELPTM_TESTS_LINT_FIXTURES_CLEAN_SRC_HIDDEN_RULE_H_
