// Lint fixture: src/util/ is exempt from the raw-mutex rule (the shims
// themselves live here), but the [mutex] declaration rule still applies.
#ifndef ANGELPTM_TESTS_LINT_FIXTURES_CLEAN_SRC_UTIL_LOCKS_H_
#define ANGELPTM_TESTS_LINT_FIXTURES_CLEAN_SRC_UTIL_LOCKS_H_

#include <mutex>

namespace demo::util_layer {

inline std::mutex& SharedMu() {  // lint: unguarded (fixture)
  static std::mutex mu;  // lint: unguarded (fixture: util-dir exemption)
  return mu;
}

inline void Touch() {
  // No raw-mutex waiver needed under src/util/.
  std::lock_guard<std::mutex> lock(SharedMu());
}

}  // namespace demo::util_layer

#endif  // ANGELPTM_TESTS_LINT_FIXTURES_CLEAN_SRC_UTIL_LOCKS_H_
