// Lint fixture: rank constants parsed by the lock-class rule
// (LOCKRANK_CONST_RE). Never compiled.
#ifndef ANGELPTM_TESTS_LINT_FIXTURES_CLEAN_SRC_UTIL_LOCKDEP_H_
#define ANGELPTM_TESTS_LINT_FIXTURES_CLEAN_SRC_UTIL_LOCKDEP_H_

namespace lockrank {
inline constexpr int kNoRank = 0;
inline constexpr int kDemoLock = 10;
}  // namespace lockrank

#endif  // ANGELPTM_TESTS_LINT_FIXTURES_CLEAN_SRC_UTIL_LOCKDEP_H_
