// Lint fixture: a bare intrinsic include is allowed here — src/train/simd/
// is the one directory the simd-include rule exempts. Never compiled.
#ifndef ANGELPTM_TESTS_LINT_FIXTURES_CLEAN_SRC_TRAIN_SIMD_OK_H_
#define ANGELPTM_TESTS_LINT_FIXTURES_CLEAN_SRC_TRAIN_SIMD_OK_H_

#include <immintrin.h>

#endif  // ANGELPTM_TESTS_LINT_FIXTURES_CLEAN_SRC_TRAIN_SIMD_OK_H_
