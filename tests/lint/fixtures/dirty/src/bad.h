// Lint fixture: violates every scripts/lint.py rule. Never compiled.
#ifndef ANGELPTM_TESTS_LINT_FIXTURES_DIRTY_SRC_BAD_H_
#define ANGELPTM_TESTS_LINT_FIXTURES_DIRTY_SRC_BAD_H_

#include <immintrin.h>  // Intrinsics outside src/train/simd/, no waiver.
#include <mutex>

namespace demo {

class Bad {
 public:
  util::Status Flush();  // Missing [[nodiscard]].

 private:
  std::mutex raw_mutex_;      // Raw std::mutex, no waiver ([mutex] AND
                              // [raw-mutex]: outside src/util/).
  util::Mutex lonely_mutex_;  // Never annotated, and no lock class.
  // Classified but the class is absent from the design table:
  util::Mutex rogue_{"demo.rogue", util::lockrank::kRogue};
  int rogue_val_ ANGEL_GUARDED_BY(rogue_) = 0;
  // Classified but the constant disagrees with the design table:
  util::Mutex mm_{"demo.mismatch", util::lockrank::kMismatch};
  int mm_val_ ANGEL_GUARDED_BY(mm_) = 0;
  int* leak_ = new int(3);    // Naked new, no waiver.
};

inline void Touch() {
  ANGEL_FAULT_CHECK("demo.undocumented");  // Absent from the table.
  std::mutex local;                        // lint: unguarded (decl waived...)
  std::lock_guard<std::mutex> guard(local);  // ...but the lock site is a
                                             // [raw-mutex] finding.
}

// Subclasses Optimizer but the file never calls RegisterOptimizer(...).
class OrphanRule final : public Optimizer {};

}  // namespace demo

#endif  // ANGELPTM_TESTS_LINT_FIXTURES_DIRTY_SRC_BAD_H_
