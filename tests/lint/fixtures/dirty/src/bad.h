// Lint fixture: violates every scripts/lint.py rule. Never compiled.
#ifndef ANGELPTM_TESTS_LINT_FIXTURES_DIRTY_SRC_BAD_H_
#define ANGELPTM_TESTS_LINT_FIXTURES_DIRTY_SRC_BAD_H_

#include <immintrin.h>  // Intrinsics outside src/train/simd/, no waiver.
#include <mutex>

namespace demo {

class Bad {
 public:
  util::Status Flush();  // Missing [[nodiscard]].

 private:
  std::mutex raw_mutex_;      // Raw std::mutex, no waiver.
  util::Mutex lonely_mutex_;  // Never referenced by any annotation.
  int* leak_ = new int(3);    // Naked new, no waiver.
};

inline void Touch() {
  ANGEL_FAULT_CHECK("demo.undocumented");  // Absent from the table.
}

// Subclasses Optimizer but the file never calls RegisterOptimizer(...).
class OrphanRule final : public Optimizer {};

}  // namespace demo

#endif  // ANGELPTM_TESTS_LINT_FIXTURES_DIRTY_SRC_BAD_H_
