#include <unistd.h>

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/allocator.h"
#include "mem/hierarchical_memory.h"
#include "util/random.h"

namespace angelptm::core {
namespace {

/// Property-based sweep over page sizes and random alloc/move/release
/// workloads: whatever the churn, the page-based organization must (a)
/// never corrupt tensor contents, (b) conserve frames exactly, and (c)
/// keep internal waste bounded by one page per live tensor (plus shared
/// tails). This is the §4.1 zero-external-fragmentation claim as an
/// executable invariant.
class AllocatorPropertyTest
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {};

TEST_P(AllocatorPropertyTest, RandomChurnPreservesInvariants) {
  const size_t page_bytes = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());

  mem::HierarchicalMemoryOptions options;
  options.page_bytes = page_bytes;
  options.gpu_capacity_bytes = 64 * page_bytes;
  options.cpu_capacity_bytes = 256 * page_bytes;
  options.ssd_capacity_bytes = 256 * page_bytes;
  options.ssd_path = "/tmp/angelptm_prop_" + std::to_string(::getpid()) +
                     "_" + std::to_string(seed) + ".bin";
  mem::HierarchicalMemory memory(options);
  Allocator allocator(&memory);
  util::Rng rng(seed);

  struct Live {
    Tensor* tensor;
    float signature;
    size_t elements;
  };
  std::vector<Live> live;
  uint64_t expected_bytes = 0;

  for (int step = 0; step < 400; ++step) {
    const int action = int(rng.Uniform(10));
    if (action < 5 || live.empty()) {
      // Allocate a tensor of random size (some multi-page, some tiny).
      const size_t elements = 1 + rng.Uniform(3 * page_bytes / 4);
      const uint64_t group = rng.Uniform(4);  // Encourage tail sharing.
      auto tensor = allocator.Allocate({elements}, DType::kFp32,
                                       mem::DeviceKind::kCpu, group);
      if (!tensor.ok()) continue;  // Tier full is acceptable.
      const float signature = float(step) + 0.25f;
      ASSERT_TRUE(
          (*tensor)
              ->WriteFloats(std::vector<float>(elements, signature))
              .ok());
      live.push_back({*tensor, signature, elements});
      expected_bytes += elements * 4;
    } else if (action < 8) {
      // Release a random tensor.
      const size_t index = rng.Uniform(live.size());
      expected_bytes -= live[index].elements * 4;
      ASSERT_TRUE(allocator.Release(live[index].tensor).ok());
      live.erase(live.begin() + index);
    } else {
      // Move a random tensor to a random tier and back if SSD.
      const size_t index = rng.Uniform(live.size());
      const auto target = static_cast<mem::DeviceKind>(rng.Uniform(3));
      const util::Status moved =
          allocator.Move(live[index].tensor, target);
      if (!moved.ok()) continue;  // Target tier full is acceptable.
    }

    // Invariant: allocator accounting matches live set.
    ASSERT_EQ(allocator.allocated_bytes(), expected_bytes);
    ASSERT_EQ(allocator.num_tensors(), live.size());
  }

  // Invariant: every surviving tensor still holds its signature.
  for (const Live& entry : live) {
    if (!entry.tensor->IsResident()) {
      ASSERT_TRUE(
          allocator.Move(entry.tensor, mem::DeviceKind::kCpu).ok());
    }
    std::vector<float> values;
    ASSERT_TRUE(entry.tensor->ReadFloats(&values).ok());
    for (float v : values) {
      ASSERT_EQ(v, entry.signature);
    }
  }

  // Invariant: releasing everything returns every frame.
  for (const Live& entry : live) {
    ASSERT_TRUE(allocator.Release(entry.tensor).ok());
  }
  EXPECT_EQ(memory.used_bytes(mem::DeviceKind::kCpu), 0u);
  EXPECT_EQ(memory.used_bytes(mem::DeviceKind::kGpu), 0u);
  EXPECT_EQ(memory.used_bytes(mem::DeviceKind::kSsd), 0u);
  EXPECT_EQ(allocator.padding_bytes(), 0u);
  EXPECT_EQ(memory.FragmentedBytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    PageSizesAndSeeds, AllocatorPropertyTest,
    ::testing::Combine(::testing::Values(size_t(1024), size_t(4096),
                                         size_t(16384)),
                       ::testing::Values(uint64_t(1), uint64_t(2),
                                         uint64_t(3), uint64_t(4))));

}  // namespace
}  // namespace angelptm::core
