#include "mem/ssd_tier.h"

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace angelptm::mem {
namespace {

constexpr size_t kFrame = 4096;

std::string TempPath(const char* tag) {
  return std::string("/tmp/angelptm_ssd_test_") + tag + "_" +
         std::to_string(::getpid()) + ".bin";
}

SsdTier::Options MakeOptions(const char* tag, uint64_t capacity,
                             double throttle = 0.0) {
  SsdTier::Options o;
  o.path = TempPath(tag);
  o.capacity_bytes = capacity;
  o.frame_bytes = kFrame;
  o.throttle_bytes_per_sec = throttle;
  return o;
}

/// Pins an env var for one test and restores the previous value on exit.
/// Tests asserting on a *specific* backend must pin ANGELPTM_SSD_IO_WORKERS
/// through this, or check.sh --ssd (which exports it for the whole binary)
/// would silently repoint them.
class ScopedEnvVar {
 public:
  ScopedEnvVar(const char* name, const char* value) : name_(name) {
    const char* old = ::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnvVar() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

TEST(SsdTierTest, OpenCreatesSizedFile) {
  SsdTier tier;
  ASSERT_TRUE(tier.Open(MakeOptions("open", 10 * kFrame)).ok());
  EXPECT_TRUE(tier.is_open());
  EXPECT_EQ(tier.total_frames(), 10u);
  EXPECT_EQ(tier.free_frames(), 10u);
  EXPECT_EQ(tier.capacity_bytes(), 10 * kFrame);
}

TEST(SsdTierTest, OpenRejectsCapacitySmallerThanFrame) {
  SsdTier tier;
  // A tier that cannot hold even one frame is a misconfiguration, not an
  // empty-but-valid tier.
  const auto status = tier.Open(MakeOptions("tiny", kFrame - 1));
  EXPECT_TRUE(status.IsInvalidArgument()) << status;
  EXPECT_FALSE(tier.is_open());
  // Validation happens before the backing file is created.
  EXPECT_NE(::access(TempPath("tiny").c_str(), F_OK), 0);
}

TEST(SsdTierTest, OpenRejectsZeroFrameBytes) {
  SsdTier tier;
  SsdTier::Options o = MakeOptions("zerof", 4 * kFrame);
  o.frame_bytes = 0;
  EXPECT_TRUE(tier.Open(o).IsInvalidArgument());
}

TEST(SsdTierTest, OpenRejectsFrameIndexOverflow) {
  SsdTier tier;
  // More frames than fit in the uint32_t free-list entries must be rejected
  // up front, not silently truncated to a wrapped frame count.
  SsdTier::Options o = MakeOptions("wrap", (1ull << 32) + 5);
  o.frame_bytes = 1;
  const auto status = tier.Open(o);
  EXPECT_TRUE(status.IsInvalidArgument()) << status;
  EXPECT_FALSE(tier.is_open());
  EXPECT_NE(::access(TempPath("wrap").c_str(), F_OK), 0);
}

TEST(SsdTierTest, DoubleOpenFails) {
  SsdTier tier;
  ASSERT_TRUE(tier.Open(MakeOptions("dbl", 2 * kFrame)).ok());
  EXPECT_EQ(tier.Open(MakeOptions("dbl2", 2 * kFrame)).code(),
            util::StatusCode::kFailedPrecondition);
}

TEST(SsdTierTest, WriteReadRoundTrip) {
  SsdTier tier;
  ASSERT_TRUE(tier.Open(MakeOptions("rw", 4 * kFrame)).ok());
  auto offset = tier.AcquireFrame();
  ASSERT_TRUE(offset.ok());

  std::vector<std::byte> out(kFrame);
  for (size_t i = 0; i < kFrame; ++i) out[i] = std::byte(i & 0xFF);
  ASSERT_TRUE(tier.WriteFrame(*offset, out.data(), kFrame).ok());

  std::vector<std::byte> in(kFrame);
  ASSERT_TRUE(tier.ReadFrame(*offset, in.data(), kFrame).ok());
  EXPECT_EQ(std::memcmp(out.data(), in.data(), kFrame), 0);
  const SsdTier::Stats stats = tier.Snapshot();
  EXPECT_EQ(stats.bytes_written, kFrame);
  EXPECT_EQ(stats.bytes_read, kFrame);
  EXPECT_EQ(stats.io_retries, 0u);
  EXPECT_EQ(stats.total_frames, 4u);
}

TEST(SsdTierTest, FramesIndependent) {
  SsdTier tier;
  ASSERT_TRUE(tier.Open(MakeOptions("indep", 4 * kFrame)).ok());
  auto a = tier.AcquireFrame();
  auto b = tier.AcquireFrame();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);

  std::vector<std::byte> da(kFrame, std::byte{0xAA});
  std::vector<std::byte> db(kFrame, std::byte{0xBB});
  ASSERT_TRUE(tier.WriteFrame(*a, da.data(), kFrame).ok());
  ASSERT_TRUE(tier.WriteFrame(*b, db.data(), kFrame).ok());

  std::vector<std::byte> check(kFrame);
  ASSERT_TRUE(tier.ReadFrame(*a, check.data(), kFrame).ok());
  EXPECT_EQ(check[0], std::byte{0xAA});
  ASSERT_TRUE(tier.ReadFrame(*b, check.data(), kFrame).ok());
  EXPECT_EQ(check[0], std::byte{0xBB});
}

TEST(SsdTierTest, ExhaustionAndRelease) {
  SsdTier tier;
  ASSERT_TRUE(tier.Open(MakeOptions("exh", 2 * kFrame)).ok());
  auto a = tier.AcquireFrame();
  auto b = tier.AcquireFrame();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(tier.AcquireFrame().status().IsResourceExhausted());
  tier.ReleaseFrame(*a);
  EXPECT_TRUE(tier.AcquireFrame().ok());
}

TEST(SsdTierTest, PartialFrameIo) {
  SsdTier tier;
  ASSERT_TRUE(tier.Open(MakeOptions("part", 2 * kFrame)).ok());
  auto offset = tier.AcquireFrame();
  ASSERT_TRUE(offset.ok());
  std::vector<std::byte> data(100, std::byte{0x42});
  ASSERT_TRUE(tier.WriteFrame(*offset, data.data(), 100).ok());
  std::vector<std::byte> back(100);
  ASSERT_TRUE(tier.ReadFrame(*offset, back.data(), 100).ok());
  EXPECT_EQ(back[99], std::byte{0x42});
}

TEST(SsdTierTest, OversizeIoRejected) {
  SsdTier tier;
  ASSERT_TRUE(tier.Open(MakeOptions("over", 2 * kFrame)).ok());
  auto offset = tier.AcquireFrame();
  std::vector<std::byte> data(kFrame + 1);
  EXPECT_TRUE(
      tier.WriteFrame(*offset, data.data(), kFrame + 1).IsInvalidArgument());
  EXPECT_TRUE(
      tier.ReadFrame(*offset, data.data(), kFrame + 1).IsInvalidArgument());
}

TEST(SsdTierTest, IoOnClosedTierFails) {
  SsdTier tier;
  std::byte b{};
  EXPECT_EQ(tier.WriteFrame(0, &b, 1).code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_EQ(tier.ReadFrame(0, &b, 1).code(),
            util::StatusCode::kFailedPrecondition);
}

TEST(SsdTierTest, ThrottleSlowsIo) {
  SsdTier tier;
  // 1 MiB/s: writing 16 frames of 4 KiB (64 KiB) should take >= ~50 ms.
  ASSERT_TRUE(
      tier.Open(MakeOptions("thr", 16 * kFrame, 1024.0 * 1024)).ok());
  std::vector<std::byte> data(kFrame, std::byte{1});
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 16; ++i) {
    auto offset = tier.AcquireFrame();
    ASSERT_TRUE(offset.ok());
    ASSERT_TRUE(tier.WriteFrame(*offset, data.data(), kFrame).ok());
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GE(elapsed, 0.05);
}

TEST(SsdTierTest, AsyncRoundTripThroughSubmissionQueue) {
  const ScopedEnvVar pin("ANGELPTM_SSD_IO_WORKERS", "2");
  SsdTier tier;
  SsdTier::Options o = MakeOptions("async", 8 * kFrame);
  o.io_workers = 2;
  ASSERT_TRUE(tier.Open(o).ok());
  EXPECT_EQ(tier.io_workers(), 2u);

  std::vector<uint64_t> offsets;
  std::vector<std::vector<std::byte>> bufs;
  for (int i = 0; i < 8; ++i) {
    auto offset = tier.AcquireFrame();
    ASSERT_TRUE(offset.ok());
    offsets.push_back(*offset);
    bufs.emplace_back(kFrame, std::byte(i + 1));
  }
  std::vector<std::future<util::Status>> writes;
  for (int i = 0; i < 8; ++i) {
    writes.push_back(tier.WriteFrameAsync(offsets[i], bufs[i].data(), kFrame));
  }
  for (auto& f : writes) EXPECT_TRUE(f.get().ok());

  std::vector<std::vector<std::byte>> in(8, std::vector<std::byte>(kFrame));
  std::vector<std::future<util::Status>> reads;
  for (int i = 0; i < 8; ++i) {
    reads.push_back(tier.ReadFrameAsync(offsets[i], in[i].data(), kFrame));
  }
  for (auto& f : reads) EXPECT_TRUE(f.get().ok());
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(in[i][kFrame - 1], std::byte(i + 1)) << i;
  }
  const SsdTier::Stats stats = tier.Snapshot();
  EXPECT_EQ(stats.queued_requests, 16u);
  EXPECT_GE(stats.io_batches, 1u);
  EXPECT_LE(stats.io_batches, 16u);
  EXPECT_EQ(stats.bytes_written, 8 * kFrame);
  EXPECT_EQ(stats.bytes_read, 8 * kFrame);
}

TEST(SsdTierTest, AdjacentRequestsCoalesceIntoFewerSyscalls) {
  SsdTier tier;
  SsdTier::Options o = MakeOptions("coalesce", 16 * kFrame);
  o.io_workers = 1;  // One worker: requests pile up behind the first...
  o.io_op_latency_us = 20000;  // ...because each syscall takes >= 20 ms.
  o.io_max_coalesce = 8;
  ASSERT_TRUE(tier.Open(o).ok());

  // AcquireFrame hands out sequential offsets, so these 8 writes target
  // adjacent byte ranges and must merge into a handful of pwritev batches.
  std::vector<std::vector<std::byte>> bufs;
  std::vector<uint64_t> offsets;
  for (int i = 0; i < 8; ++i) {
    auto offset = tier.AcquireFrame();
    ASSERT_TRUE(offset.ok());
    offsets.push_back(*offset);
    bufs.emplace_back(kFrame, std::byte(0x10 + i));
  }
  std::vector<std::future<util::Status>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(tier.WriteFrameAsync(offsets[i], bufs[i].data(), kFrame));
  }
  for (auto& f : futures) ASSERT_TRUE(f.get().ok());

  const SsdTier::Stats stats = tier.Snapshot();
  EXPECT_EQ(stats.queued_requests, 8u);
  // The worker was asleep in its first syscall while 7 requests queued, so
  // at most the first batch ran alone: strictly fewer batches than requests.
  EXPECT_LT(stats.io_batches, 8u);
  EXPECT_GE(stats.max_queue_depth, 2u);

  // Coalesced writes landed in the right frames.
  std::vector<std::byte> check(kFrame);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(tier.ReadFrame(offsets[i], check.data(), kFrame).ok());
    EXPECT_EQ(check[0], std::byte(0x10 + i)) << i;
  }
}

TEST(SsdTierTest, ShortReadErrorCarriesOffsetAndByteContext) {
  SsdTier tier;
  SsdTier::Options o = MakeOptions("eof", 4 * kFrame);
  o.io_workers = 0;  // Error surfaces identically on either backend.
  o.retry.max_attempts = 1;
  ASSERT_TRUE(tier.Open(o).ok());
  auto offset = tier.AcquireFrame();
  ASSERT_TRUE(offset.ok());
  std::vector<std::byte> data(kFrame, std::byte{0x33});
  ASSERT_TRUE(tier.WriteFrame(*offset, data.data(), kFrame).ok());

  // Truncate the backing file out from under the tier: the next read hits
  // EOF mid-range and must say where and how much was missing.
  ASSERT_EQ(::truncate(TempPath("eof").c_str(), 0), 0);
  const util::Status status = tier.ReadFrame(*offset, data.data(), kFrame);
  ASSERT_TRUE(status.IsIoError()) << status;
  const std::string message = status.ToString();
  EXPECT_NE(message.find("unexpected EOF"), std::string::npos) << message;
  EXPECT_NE(message.find("offset " + std::to_string(*offset)),
            std::string::npos)
      << message;
  EXPECT_NE(message.find("requested " + std::to_string(kFrame)),
            std::string::npos)
      << message;
  EXPECT_NE(message.find("received 0"), std::string::npos) << message;
}

TEST(SsdTierTest, SyncBackendBypassesTheQueue) {
  const ScopedEnvVar pin("ANGELPTM_SSD_IO_WORKERS", "0");
  SsdTier tier;
  SsdTier::Options o = MakeOptions("sync", 4 * kFrame);
  o.io_workers = 0;
  ASSERT_TRUE(tier.Open(o).ok());
  EXPECT_EQ(tier.io_workers(), 0u);
  auto offset = tier.AcquireFrame();
  ASSERT_TRUE(offset.ok());
  std::vector<std::byte> data(kFrame, std::byte{0x44});
  ASSERT_TRUE(tier.WriteFrame(*offset, data.data(), kFrame).ok());
  std::vector<std::byte> back(kFrame);
  ASSERT_TRUE(tier.ReadFrame(*offset, back.data(), kFrame).ok());
  EXPECT_EQ(back[0], std::byte{0x44});
  EXPECT_EQ(tier.Snapshot().queued_requests, 0u);
}

TEST(SsdTierTest, CloseDrainsEveryAcceptedRequest) {
  SsdTier tier;
  SsdTier::Options o = MakeOptions("drain", 8 * kFrame);
  o.io_workers = 1;
  o.io_op_latency_us = 5000;  // Guarantee requests are pending at Close.
  ASSERT_TRUE(tier.Open(o).ok());
  std::vector<std::vector<std::byte>> bufs;
  std::vector<std::future<util::Status>> futures;
  for (int i = 0; i < 4; ++i) {
    auto offset = tier.AcquireFrame();
    ASSERT_TRUE(offset.ok());
    bufs.emplace_back(kFrame, std::byte(i));
    futures.push_back(
        tier.WriteFrameAsync(*offset, bufs.back().data(), kFrame));
  }
  tier.Close();
  // Close stops the workers only after the queue is empty, so every
  // accepted request resolved successfully rather than being dropped.
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
}

TEST(SsdTierTest, WorkerCountEnvOverrideWins) {
  const ScopedEnvVar pin("ANGELPTM_SSD_IO_WORKERS", "0");
  SsdTier tier;
  SsdTier::Options o = MakeOptions("envw", 2 * kFrame);
  o.io_workers = 3;
  ASSERT_TRUE(tier.Open(o).ok());
  EXPECT_EQ(tier.io_workers(), 0u);
}

TEST(SsdTierTest, DeleteOnCloseRemovesFile) {
  const std::string path = TempPath("del");
  {
    SsdTier tier;
    SsdTier::Options o;
    o.path = path;
    o.capacity_bytes = 2 * kFrame;
    o.frame_bytes = kFrame;
    ASSERT_TRUE(tier.Open(o).ok());
    EXPECT_EQ(::access(path.c_str(), F_OK), 0);
  }
  EXPECT_NE(::access(path.c_str(), F_OK), 0);
}

}  // namespace
}  // namespace angelptm::mem
