#include "mem/ssd_tier.h"

#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace angelptm::mem {
namespace {

constexpr size_t kFrame = 4096;

std::string TempPath(const char* tag) {
  return std::string("/tmp/angelptm_ssd_test_") + tag + "_" +
         std::to_string(::getpid()) + ".bin";
}

SsdTier::Options MakeOptions(const char* tag, uint64_t capacity,
                             double throttle = 0.0) {
  SsdTier::Options o;
  o.path = TempPath(tag);
  o.capacity_bytes = capacity;
  o.frame_bytes = kFrame;
  o.throttle_bytes_per_sec = throttle;
  return o;
}

TEST(SsdTierTest, OpenCreatesSizedFile) {
  SsdTier tier;
  ASSERT_TRUE(tier.Open(MakeOptions("open", 10 * kFrame)).ok());
  EXPECT_TRUE(tier.is_open());
  EXPECT_EQ(tier.total_frames(), 10u);
  EXPECT_EQ(tier.free_frames(), 10u);
  EXPECT_EQ(tier.capacity_bytes(), 10 * kFrame);
}

TEST(SsdTierTest, OpenRejectsCapacitySmallerThanFrame) {
  SsdTier tier;
  // A tier that cannot hold even one frame is a misconfiguration, not an
  // empty-but-valid tier.
  const auto status = tier.Open(MakeOptions("tiny", kFrame - 1));
  EXPECT_TRUE(status.IsInvalidArgument()) << status;
  EXPECT_FALSE(tier.is_open());
  // Validation happens before the backing file is created.
  EXPECT_NE(::access(TempPath("tiny").c_str(), F_OK), 0);
}

TEST(SsdTierTest, OpenRejectsZeroFrameBytes) {
  SsdTier tier;
  SsdTier::Options o = MakeOptions("zerof", 4 * kFrame);
  o.frame_bytes = 0;
  EXPECT_TRUE(tier.Open(o).IsInvalidArgument());
}

TEST(SsdTierTest, OpenRejectsFrameIndexOverflow) {
  SsdTier tier;
  // More frames than fit in the uint32_t free-list entries must be rejected
  // up front, not silently truncated to a wrapped frame count.
  SsdTier::Options o = MakeOptions("wrap", (1ull << 32) + 5);
  o.frame_bytes = 1;
  const auto status = tier.Open(o);
  EXPECT_TRUE(status.IsInvalidArgument()) << status;
  EXPECT_FALSE(tier.is_open());
  EXPECT_NE(::access(TempPath("wrap").c_str(), F_OK), 0);
}

TEST(SsdTierTest, DoubleOpenFails) {
  SsdTier tier;
  ASSERT_TRUE(tier.Open(MakeOptions("dbl", 2 * kFrame)).ok());
  EXPECT_EQ(tier.Open(MakeOptions("dbl2", 2 * kFrame)).code(),
            util::StatusCode::kFailedPrecondition);
}

TEST(SsdTierTest, WriteReadRoundTrip) {
  SsdTier tier;
  ASSERT_TRUE(tier.Open(MakeOptions("rw", 4 * kFrame)).ok());
  auto offset = tier.AcquireFrame();
  ASSERT_TRUE(offset.ok());

  std::vector<std::byte> out(kFrame);
  for (size_t i = 0; i < kFrame; ++i) out[i] = std::byte(i & 0xFF);
  ASSERT_TRUE(tier.WriteFrame(*offset, out.data(), kFrame).ok());

  std::vector<std::byte> in(kFrame);
  ASSERT_TRUE(tier.ReadFrame(*offset, in.data(), kFrame).ok());
  EXPECT_EQ(std::memcmp(out.data(), in.data(), kFrame), 0);
  const SsdTier::Stats stats = tier.Snapshot();
  EXPECT_EQ(stats.bytes_written, kFrame);
  EXPECT_EQ(stats.bytes_read, kFrame);
  EXPECT_EQ(stats.io_retries, 0u);
  EXPECT_EQ(stats.total_frames, 4u);
}

TEST(SsdTierTest, FramesIndependent) {
  SsdTier tier;
  ASSERT_TRUE(tier.Open(MakeOptions("indep", 4 * kFrame)).ok());
  auto a = tier.AcquireFrame();
  auto b = tier.AcquireFrame();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);

  std::vector<std::byte> da(kFrame, std::byte{0xAA});
  std::vector<std::byte> db(kFrame, std::byte{0xBB});
  ASSERT_TRUE(tier.WriteFrame(*a, da.data(), kFrame).ok());
  ASSERT_TRUE(tier.WriteFrame(*b, db.data(), kFrame).ok());

  std::vector<std::byte> check(kFrame);
  ASSERT_TRUE(tier.ReadFrame(*a, check.data(), kFrame).ok());
  EXPECT_EQ(check[0], std::byte{0xAA});
  ASSERT_TRUE(tier.ReadFrame(*b, check.data(), kFrame).ok());
  EXPECT_EQ(check[0], std::byte{0xBB});
}

TEST(SsdTierTest, ExhaustionAndRelease) {
  SsdTier tier;
  ASSERT_TRUE(tier.Open(MakeOptions("exh", 2 * kFrame)).ok());
  auto a = tier.AcquireFrame();
  auto b = tier.AcquireFrame();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(tier.AcquireFrame().status().IsResourceExhausted());
  tier.ReleaseFrame(*a);
  EXPECT_TRUE(tier.AcquireFrame().ok());
}

TEST(SsdTierTest, PartialFrameIo) {
  SsdTier tier;
  ASSERT_TRUE(tier.Open(MakeOptions("part", 2 * kFrame)).ok());
  auto offset = tier.AcquireFrame();
  ASSERT_TRUE(offset.ok());
  std::vector<std::byte> data(100, std::byte{0x42});
  ASSERT_TRUE(tier.WriteFrame(*offset, data.data(), 100).ok());
  std::vector<std::byte> back(100);
  ASSERT_TRUE(tier.ReadFrame(*offset, back.data(), 100).ok());
  EXPECT_EQ(back[99], std::byte{0x42});
}

TEST(SsdTierTest, OversizeIoRejected) {
  SsdTier tier;
  ASSERT_TRUE(tier.Open(MakeOptions("over", 2 * kFrame)).ok());
  auto offset = tier.AcquireFrame();
  std::vector<std::byte> data(kFrame + 1);
  EXPECT_TRUE(
      tier.WriteFrame(*offset, data.data(), kFrame + 1).IsInvalidArgument());
  EXPECT_TRUE(
      tier.ReadFrame(*offset, data.data(), kFrame + 1).IsInvalidArgument());
}

TEST(SsdTierTest, IoOnClosedTierFails) {
  SsdTier tier;
  std::byte b{};
  EXPECT_EQ(tier.WriteFrame(0, &b, 1).code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_EQ(tier.ReadFrame(0, &b, 1).code(),
            util::StatusCode::kFailedPrecondition);
}

TEST(SsdTierTest, ThrottleSlowsIo) {
  SsdTier tier;
  // 1 MiB/s: writing 16 frames of 4 KiB (64 KiB) should take >= ~50 ms.
  ASSERT_TRUE(
      tier.Open(MakeOptions("thr", 16 * kFrame, 1024.0 * 1024)).ok());
  std::vector<std::byte> data(kFrame, std::byte{1});
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 16; ++i) {
    auto offset = tier.AcquireFrame();
    ASSERT_TRUE(offset.ok());
    ASSERT_TRUE(tier.WriteFrame(*offset, data.data(), kFrame).ok());
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GE(elapsed, 0.05);
}

TEST(SsdTierTest, DeleteOnCloseRemovesFile) {
  const std::string path = TempPath("del");
  {
    SsdTier tier;
    SsdTier::Options o;
    o.path = path;
    o.capacity_bytes = 2 * kFrame;
    o.frame_bytes = kFrame;
    ASSERT_TRUE(tier.Open(o).ok());
    EXPECT_EQ(::access(path.c_str(), F_OK), 0);
  }
  EXPECT_NE(::access(path.c_str(), F_OK), 0);
}

}  // namespace
}  // namespace angelptm::mem
