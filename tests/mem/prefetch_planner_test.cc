#include "mem/prefetch_planner.h"

#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mem/copy_engine.h"
#include "mem/hierarchical_memory.h"
#include "mem/read_ahead.h"

namespace angelptm::mem {
namespace {

constexpr size_t kFrame = 4096;

/// The layer visit order of one training step: forward 0..n-1, then backward
/// n-1..0 — the sawtooth every test schedule here uses.
std::vector<uint64_t> SawtoothOrder(uint64_t layers) {
  std::vector<uint64_t> order;
  for (uint64_t l = 0; l < layers; ++l) order.push_back(l);
  for (uint64_t l = layers; l > 0; --l) order.push_back(l - 1);
  return order;
}

PrefetchPlanner TrainedPlanner(const std::vector<uint64_t>& order) {
  PrefetchPlanner planner;
  for (const uint64_t key : order) planner.RecordAccess(key);
  planner.FinishWarmup();
  return planner;
}

TEST(PrefetchPlannerTest, LearnedOrderMatchesRecordedTrace) {
  const std::vector<uint64_t> order = SawtoothOrder(6);
  const PrefetchPlanner planner = TrainedPlanner(order);
  EXPECT_TRUE(planner.trained());
  EXPECT_EQ(planner.learned_order(), order);
  EXPECT_EQ(planner.Snapshot().order_length, order.size());
  EXPECT_EQ(planner.Snapshot().recorded_accesses, order.size());
}

TEST(PrefetchPlannerTest, RecordingStopsAfterWarmup) {
  PrefetchPlanner planner = TrainedPlanner({0, 1, 2});
  planner.RecordAccess(99);  // Steady state: must not grow the order.
  EXPECT_EQ(planner.learned_order().size(), 3u);
}

TEST(PrefetchPlannerTest, UntrainedPlannerAnswersConservatively) {
  PrefetchPlanner planner;
  EXPECT_FALSE(planner.trained());
  EXPECT_EQ(planner.NextUseDistance(0), PrefetchPlanner::kNeverUsed);
  EXPECT_TRUE(planner.LookaheadKeys(4).empty());
  planner.OnUse(0);  // Must be a harmless no-op before training.
  EXPECT_EQ(planner.Snapshot().mispredicts, 0u);
}

TEST(PrefetchPlannerTest, RepeatingScheduleIsFullyPredicted) {
  const std::vector<uint64_t> order = SawtoothOrder(5);
  PrefetchPlanner planner = TrainedPlanner(order);
  // Three steady-state steps that replay the learned order exactly: every
  // OnUse must be a predicted hit, none a mispredict.
  for (int step = 0; step < 3; ++step) {
    planner.BeginStep();
    for (const uint64_t key : order) planner.OnUse(key);
  }
  const PrefetchPlanner::Stats stats = planner.Snapshot();
  EXPECT_EQ(stats.predicted_hits, 3 * order.size());
  EXPECT_EQ(stats.mispredicts, 0u);
}

TEST(PrefetchPlannerTest, MispredictResyncsWithinTheStep) {
  PrefetchPlanner planner = TrainedPlanner({0, 1, 2, 3});
  planner.BeginStep();
  planner.OnUse(0);
  planner.OnUse(2);  // Layer 1 skipped: one mispredict...
  planner.OnUse(3);  // ...but the cursor resynced, so this is a hit again.
  const PrefetchPlanner::Stats stats = planner.Snapshot();
  EXPECT_EQ(stats.mispredicts, 1u);
  EXPECT_EQ(stats.predicted_hits, 2u);
}

TEST(PrefetchPlannerTest, NextUseDistanceWrapsAroundThePeriod) {
  // Order 0 1 2 1 0: distances are relative to the cursor and wrap.
  PrefetchPlanner planner = TrainedPlanner({0, 1, 2, 1, 0});
  planner.BeginStep();
  EXPECT_EQ(planner.NextUseDistance(0), 0u);
  EXPECT_EQ(planner.NextUseDistance(1), 1u);
  EXPECT_EQ(planner.NextUseDistance(2), 2u);
  planner.OnUse(0);
  planner.OnUse(1);
  // Cursor at position 2: key 0's only remaining use is position 4.
  EXPECT_EQ(planner.NextUseDistance(0), 2u);
  planner.OnUse(2);
  planner.OnUse(1);
  planner.OnUse(0);
  // Past the end of the period: distances wrap into the next step.
  EXPECT_EQ(planner.NextUseDistance(0), 0u);
  EXPECT_EQ(planner.NextUseDistance(2), 2u);
  EXPECT_EQ(planner.NextUseDistance(7), PrefetchPlanner::kNeverUsed);
}

TEST(PrefetchPlannerTest, LookaheadListsDistinctUpcomingKeys) {
  PrefetchPlanner planner = TrainedPlanner({0, 1, 2, 2, 1, 0});
  planner.BeginStep();
  planner.OnUse(0);
  // Upcoming: 1 2 2 1 0 -> distinct in visit order.
  EXPECT_EQ(planner.LookaheadKeys(8), (std::vector<uint64_t>{1, 2, 0}));
  EXPECT_EQ(planner.LookaheadKeys(2), (std::vector<uint64_t>{1, 2}));
}

TEST(PrefetchPlannerTest, EvictionNeverPicksTheImmediatelyNextKey) {
  const std::vector<uint64_t> order = SawtoothOrder(6);
  PrefetchPlanner planner = TrainedPlanner(order);
  planner.BeginStep();
  // Walk a full step; at every position, the immediately-next key must not
  // be the victim as long as any other candidate exists.
  std::vector<uint64_t> all = {0, 1, 2, 3, 4, 5};
  for (const uint64_t key : order) {
    planner.OnUse(key);
    const size_t cursor = planner.cursor();
    if (cursor >= order.size()) break;
    const uint64_t next_key = planner.learned_order()[cursor];
    EXPECT_NE(planner.PickEvictionVictim(all), next_key)
        << "evicted the immediately-next key at cursor " << cursor;
    // Even from a two-element candidate set containing the next key.
    const uint64_t other = (next_key + 1) % 6;
    EXPECT_EQ(planner.PickEvictionVictim({next_key, other}), other);
  }
  // Sole candidate: no choice but the next key.
  EXPECT_EQ(planner.PickEvictionVictim({order[planner.cursor() % order.size()]}),
            order[planner.cursor() % order.size()]);
  EXPECT_EQ(planner.PickEvictionVictim({}), PrefetchPlanner::kNoVictim);
}

TEST(PrefetchPlannerTest, RankingIsFarthestFirst) {
  PrefetchPlanner planner = TrainedPlanner({0, 1, 2, 3});
  planner.BeginStep();
  planner.OnUse(0);  // Upcoming: 1 (d=0), 2 (d=1), 3 (d=2), 0 (wraps, d=3).
  EXPECT_EQ(planner.RankEvictionCandidates({1, 2, 3, 0}),
            (std::vector<uint64_t>{0, 3, 2, 1}));
  // Keys outside the learned order are free to evict: ranked first.
  EXPECT_EQ(planner.RankEvictionCandidates({1, 42}).front(), 42u);
}

/// Integration harness: pages on an SSD-backed working set, the planner
/// feeding the read-ahead executor through the copy engine and the async
/// submission-queue SSD backend.
class ReadAheadTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kPages = 12;

  static HierarchicalMemoryOptions MemoryOptions(const char* tag,
                                                 uint64_t cpu_frames) {
    HierarchicalMemoryOptions o;
    o.page_bytes = kFrame;
    o.gpu_capacity_bytes = 2 * kFrame;
    o.cpu_capacity_bytes = cpu_frames * kFrame;
    o.ssd_capacity_bytes = 2 * kPages * kFrame;
    o.ssd_path = std::string("/tmp/angelptm_readahead_") + tag + "_" +
                 std::to_string(::getpid()) + ".bin";
    return o;
  }

  /// Creates kPages pages, fills page i with byte i, stages all to SSD.
  std::vector<Page*> MakeSsdWorkingSet(HierarchicalMemory* memory) {
    std::vector<Page*> pages;
    for (uint64_t i = 0; i < kPages; ++i) {
      auto page = memory->CreatePage(DeviceKind::kCpu);
      EXPECT_TRUE(page.ok());
      std::memset((*page)->data_ptr(), static_cast<int>(i + 1), kFrame);
      EXPECT_TRUE(memory->MovePageSync(*page, DeviceKind::kSsd).ok());
      pages.push_back(*page);
    }
    return pages;
  }
};

TEST_F(ReadAheadTest, ReadAheadFullyCoversRepeatingScheduleAfterWarmup) {
  // CPU tier large enough for the whole set: no evictions interfere, so
  // coverage (and eventually the hit rate) must reach 100% deterministically.
  HierarchicalMemory memory(MemoryOptions("cover", kPages + 4));
  CopyEngine engine(&memory, 2);
  PrefetchPlanner planner;
  ReadAheadExecutor::Options options;
  options.window = 4;
  options.max_resident = kPages + 2;
  ReadAheadExecutor executor(&memory, &engine, &planner, options);

  const std::vector<Page*> pages = MakeSsdWorkingSet(&memory);
  for (uint64_t i = 0; i < kPages; ++i) executor.Bind(i, pages[i]);
  const std::vector<uint64_t> order = SawtoothOrder(kPages);

  // Warmup step: record the trace while fetching on demand.
  for (const uint64_t key : order) {
    planner.RecordAccess(key);
    auto page = executor.Acquire(key);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ((*page)->data_ptr()[0], std::byte(key + 1));
  }
  planner.FinishWarmup();

  // Two steady-state steps: every use must have its fetch issued (or be
  // resident) before the access — 100% read-ahead coverage.
  const uint64_t covered_before = executor.Snapshot().covered;
  for (int step = 0; step < 2; ++step) {
    executor.BeginStep();
    for (const uint64_t key : order) {
      auto page = executor.Acquire(key);
      ASSERT_TRUE(page.ok());
      EXPECT_EQ((*page)->data_ptr()[0], std::byte(key + 1));
    }
  }
  const ReadAheadExecutor::Stats stats = executor.Snapshot();
  EXPECT_EQ(stats.covered - covered_before, 2 * order.size());
  EXPECT_EQ(stats.failed_moves, 0u);
  EXPECT_EQ(planner.Snapshot().mispredicts, 0u);

  // Once everything is resident, a further step is pure hits: 100% hit rate.
  const uint64_t hits_before = executor.Snapshot().hits;
  const uint64_t waits_before = executor.Snapshot().waits;
  executor.BeginStep();
  for (const uint64_t key : order) {
    ASSERT_TRUE(executor.Acquire(key).ok());
  }
  EXPECT_EQ(executor.Snapshot().hits - hits_before, order.size());
  EXPECT_EQ(executor.Snapshot().waits - waits_before, 0u);
  ASSERT_TRUE(executor.Drain().ok());
}

TEST_F(ReadAheadTest, WorkingSetLargerThanFetchTierStillRoundTrips) {
  // Only 6 CPU frames for 12 pages: the executor must evict (Belady) while
  // keeping every access correct under the async SSD backend.
  HierarchicalMemory memory(MemoryOptions("evict", 6));
  CopyEngine engine(&memory, 2);
  PrefetchPlanner planner;
  ReadAheadExecutor::Options options;
  options.window = 3;
  options.max_resident = 5;  // Headroom below the 6 CPU frames.
  ReadAheadExecutor executor(&memory, &engine, &planner, options);

  const std::vector<Page*> pages = MakeSsdWorkingSet(&memory);
  for (uint64_t i = 0; i < kPages; ++i) executor.Bind(i, pages[i]);
  const std::vector<uint64_t> order = SawtoothOrder(kPages);

  for (const uint64_t key : order) {
    planner.RecordAccess(key);
    auto page = executor.Acquire(key);
    ASSERT_TRUE(page.ok());
  }
  planner.FinishWarmup();

  for (int step = 0; step < 3; ++step) {
    executor.BeginStep();
    for (const uint64_t key : order) {
      auto page = executor.Acquire(key);
      ASSERT_TRUE(page.ok());
      // Every byte still matches after rotating through the SSD tier.
      EXPECT_EQ((*page)->data_ptr()[0], std::byte(key + 1));
      EXPECT_EQ((*page)->data_ptr()[kFrame - 1], std::byte(key + 1));
    }
  }
  ASSERT_TRUE(executor.Drain().ok());
  const ReadAheadExecutor::Stats stats = executor.Snapshot();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.covered, 0u);
  // The async submission queue actually carried the traffic.
  EXPECT_GT(memory.ssd()->Snapshot().queued_requests, 0u);
}

TEST_F(ReadAheadTest, AcquireOfUnboundKeyFails) {
  HierarchicalMemory memory(MemoryOptions("unbound", 4));
  CopyEngine engine(&memory, 1);
  PrefetchPlanner planner;
  ReadAheadExecutor executor(&memory, &engine, &planner, {});
  EXPECT_TRUE(executor.Acquire(7).status().IsNotFound());
}

}  // namespace
}  // namespace angelptm::mem
