#include "mem/page.h"

#include <gtest/gtest.h>

namespace angelptm::mem {
namespace {

constexpr size_t kPageBytes = 4096;

TEST(PageTest, StartsEmptyAndFullyAvailable) {
  Page page(1, kPageBytes);
  EXPECT_EQ(page.id(), 1u);
  EXPECT_EQ(page.total_bytes(), kPageBytes);
  EXPECT_EQ(page.available_bytes(), kPageBytes);
  EXPECT_TRUE(page.IsEmpty());
  EXPECT_EQ(page.NumTensors(), 0);
  EXPECT_EQ(page.FragmentedBytes(), 0u);
}

TEST(PageTest, AllocateClaimsBumpedRange) {
  Page page(1, kPageBytes);
  ASSERT_TRUE(page.Allocate(1000, /*tensor_id=*/7).ok());
  EXPECT_EQ(page.available_bytes(), kPageBytes - 1000);
  ASSERT_TRUE(page.HoldsTensor(7));
  const Page::Slot* slot = page.FindSlot(7);
  ASSERT_NE(slot, nullptr);
  EXPECT_EQ(slot->offset, 0u);
  EXPECT_EQ(slot->bytes, 1000u);

  ASSERT_TRUE(page.Allocate(500, /*tensor_id=*/8).ok());
  const Page::Slot* slot2 = page.FindSlot(8);
  ASSERT_NE(slot2, nullptr);
  EXPECT_EQ(slot2->offset, 1000u);
  EXPECT_EQ(page.NumTensors(), 2);
}

TEST(PageTest, AtMostTwoTensorsPerPage) {
  // §4.1: pages host at most two tensors to keep management trivial.
  Page page(1, kPageBytes);
  ASSERT_TRUE(page.Allocate(100, 1).ok());
  ASSERT_TRUE(page.Allocate(100, 2).ok());
  EXPECT_TRUE(page.Allocate(100, 3).IsResourceExhausted());
}

TEST(PageTest, RejectsOversizeAndZeroAllocations) {
  Page page(1, kPageBytes);
  EXPECT_TRUE(page.Allocate(kPageBytes + 1, 1).IsResourceExhausted());
  EXPECT_TRUE(page.Allocate(0, 1).IsInvalidArgument());
  ASSERT_TRUE(page.Allocate(kPageBytes, 1).ok());  // Exactly full is fine.
  EXPECT_EQ(page.available_bytes(), 0u);
}

TEST(PageTest, RejectsDuplicateTensor) {
  Page page(1, kPageBytes);
  ASSERT_TRUE(page.Allocate(100, 5).ok());
  EXPECT_EQ(page.Allocate(100, 5).code(),
            util::StatusCode::kAlreadyExists);
}

TEST(PageTest, ReleaseTailReclaimsImmediately) {
  Page page(1, kPageBytes);
  ASSERT_TRUE(page.Allocate(1000, 1).ok());
  ASSERT_TRUE(page.Allocate(500, 2).ok());
  ASSERT_TRUE(page.Release(2).ok());  // Tail slot.
  EXPECT_EQ(page.available_bytes(), kPageBytes - 1000);
  EXPECT_EQ(page.FragmentedBytes(), 0u);
}

TEST(PageTest, ReleaseHeadLeavesBoundedHoleUntilDrain) {
  Page page(1, kPageBytes);
  ASSERT_TRUE(page.Allocate(1000, 1).ok());
  ASSERT_TRUE(page.Allocate(500, 2).ok());
  ASSERT_TRUE(page.Release(1).ok());  // Head slot: hole until page drains.
  EXPECT_EQ(page.FragmentedBytes(), 1000u);
  EXPECT_EQ(page.available_bytes(), kPageBytes - 1500);
  ASSERT_TRUE(page.Release(2).ok());  // Drains: hole erased.
  EXPECT_TRUE(page.IsEmpty());
  EXPECT_EQ(page.available_bytes(), kPageBytes);
  EXPECT_EQ(page.FragmentedBytes(), 0u);
}

TEST(PageTest, ReleaseUnknownTensorFails) {
  Page page(1, kPageBytes);
  EXPECT_TRUE(page.Release(99).IsNotFound());
}

TEST(PageTest, SlotReusableAfterRelease) {
  Page page(1, kPageBytes);
  ASSERT_TRUE(page.Allocate(2000, 1).ok());
  ASSERT_TRUE(page.Release(1).ok());
  ASSERT_TRUE(page.Allocate(3000, 2).ok());
  ASSERT_TRUE(page.Allocate(1000, 3).ok());
  EXPECT_EQ(page.NumTensors(), 2);
}

TEST(PageTest, ResidenceTransitionsBumpEpoch) {
  Page page(1, kPageBytes);
  const uint64_t e0 = page.residence_epoch();
  std::byte buffer[16];
  page.SetResidence(DeviceKind::kGpu, buffer);
  EXPECT_EQ(page.device(), DeviceKind::kGpu);
  EXPECT_EQ(page.data_ptr(), buffer);
  EXPECT_EQ(page.ssd_offset(), kInvalidSsdOffset);
  EXPECT_EQ(page.residence_epoch(), e0 + 1);

  page.SetSsdResidence(4096);
  EXPECT_EQ(page.device(), DeviceKind::kSsd);
  EXPECT_EQ(page.data_ptr(), nullptr);
  EXPECT_EQ(page.ssd_offset(), 4096u);
  EXPECT_EQ(page.residence_epoch(), e0 + 2);
}

TEST(PageTest, DefaultPageSizeIsFourMiB) {
  // The paper's optimal page size (§4.1).
  EXPECT_EQ(kDefaultPageBytes, 4ull * 1024 * 1024);
  EXPECT_EQ(kMaxTensorsPerPage, 2);
}

}  // namespace
}  // namespace angelptm::mem
