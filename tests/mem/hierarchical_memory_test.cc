#include "mem/hierarchical_memory.h"
#include "mem/memory_report.h"

#include <unistd.h>

#include <cstring>
#include <string>

#include <gtest/gtest.h>

namespace angelptm::mem {
namespace {

constexpr size_t kPage = 64 * 1024;

HierarchicalMemoryOptions SmallOptions(bool with_ssd = true) {
  HierarchicalMemoryOptions o;
  o.page_bytes = kPage;
  o.gpu_capacity_bytes = 4 * kPage;
  o.cpu_capacity_bytes = 8 * kPage;
  o.ssd_capacity_bytes = with_ssd ? 16 * kPage : 0;
  o.ssd_path = "/tmp/angelptm_hm_test_" + std::to_string(::getpid()) + ".bin";
  return o;
}

TEST(HierarchicalMemoryTest, CreateAndDestroyPages) {
  HierarchicalMemory hm(SmallOptions());
  auto page = hm.CreatePage(DeviceKind::kGpu);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ((*page)->device(), DeviceKind::kGpu);
  EXPECT_NE((*page)->data_ptr(), nullptr);
  EXPECT_EQ(hm.num_live_pages(), 1u);
  EXPECT_EQ(hm.used_bytes(DeviceKind::kGpu), kPage);
  ASSERT_TRUE(hm.DestroyPage(*page).ok());
  EXPECT_EQ(hm.num_live_pages(), 0u);
  EXPECT_EQ(hm.used_bytes(DeviceKind::kGpu), 0u);
}

TEST(HierarchicalMemoryTest, CreateOnSsdWithoutTierFails) {
  HierarchicalMemory hm(SmallOptions(/*with_ssd=*/false));
  EXPECT_EQ(hm.CreatePage(DeviceKind::kSsd).status().code(),
            util::StatusCode::kFailedPrecondition);
}

TEST(HierarchicalMemoryTest, GpuExhaustionSurfacesAsResourceExhausted) {
  HierarchicalMemory hm(SmallOptions());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(hm.CreatePage(DeviceKind::kGpu).ok());
  }
  EXPECT_TRUE(hm.CreatePage(DeviceKind::kGpu).status().IsResourceExhausted());
  // CPU tier is independent.
  EXPECT_TRUE(hm.CreatePage(DeviceKind::kCpu).ok());
}

TEST(HierarchicalMemoryTest, DestroyNonEmptyPageRequiresForce) {
  HierarchicalMemory hm(SmallOptions());
  auto page = hm.CreatePage(DeviceKind::kCpu);
  ASSERT_TRUE(page.ok());
  ASSERT_TRUE((*page)->Allocate(100, /*tensor_id=*/1).ok());
  EXPECT_EQ(hm.DestroyPage(*page).code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_TRUE(hm.DestroyPage(*page, /*force=*/true).ok());
}

TEST(HierarchicalMemoryTest, MovePreservesContentsAcrossMemoryTiers) {
  HierarchicalMemory hm(SmallOptions());
  auto page = hm.CreatePage(DeviceKind::kCpu);
  ASSERT_TRUE(page.ok());
  std::memset((*page)->data_ptr(), 0x5C, kPage);

  ASSERT_TRUE(hm.MovePageSync(*page, DeviceKind::kGpu).ok());
  EXPECT_EQ((*page)->device(), DeviceKind::kGpu);
  for (size_t i = 0; i < kPage; i += 997) {
    ASSERT_EQ((*page)->data_ptr()[i], std::byte{0x5C}) << "at " << i;
  }
  EXPECT_EQ(hm.used_bytes(DeviceKind::kCpu), 0u);
  EXPECT_EQ(hm.used_bytes(DeviceKind::kGpu), kPage);
}

TEST(HierarchicalMemoryTest, MovePreservesContentsThroughSsd) {
  HierarchicalMemory hm(SmallOptions());
  auto page = hm.CreatePage(DeviceKind::kGpu);
  ASSERT_TRUE(page.ok());
  for (size_t i = 0; i < kPage; ++i) {
    (*page)->data_ptr()[i] = std::byte(i * 7 & 0xFF);
  }
  ASSERT_TRUE(hm.MovePageSync(*page, DeviceKind::kSsd).ok());
  EXPECT_EQ((*page)->device(), DeviceKind::kSsd);
  EXPECT_EQ((*page)->data_ptr(), nullptr);
  EXPECT_EQ(hm.used_bytes(DeviceKind::kGpu), 0u);

  ASSERT_TRUE(hm.MovePageSync(*page, DeviceKind::kCpu).ok());
  EXPECT_EQ((*page)->device(), DeviceKind::kCpu);
  for (size_t i = 0; i < kPage; i += 991) {
    ASSERT_EQ((*page)->data_ptr()[i], std::byte(i * 7 & 0xFF)) << "at " << i;
  }
  EXPECT_EQ(hm.used_bytes(DeviceKind::kSsd), 0u);
}

TEST(HierarchicalMemoryTest, MoveToSameDeviceIsNoop) {
  HierarchicalMemory hm(SmallOptions());
  auto page = hm.CreatePage(DeviceKind::kGpu);
  ASSERT_TRUE(page.ok());
  const uint64_t epoch = (*page)->residence_epoch();
  ASSERT_TRUE(hm.MovePageSync(*page, DeviceKind::kGpu).ok());
  EXPECT_EQ((*page)->residence_epoch(), epoch);
}

TEST(HierarchicalMemoryTest, MoveToFullTierFailsAndLeavesPageIntact) {
  HierarchicalMemory hm(SmallOptions());
  // Fill the GPU tier.
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(hm.CreatePage(DeviceKind::kGpu).ok());
  auto page = hm.CreatePage(DeviceKind::kCpu);
  ASSERT_TRUE(page.ok());
  std::memset((*page)->data_ptr(), 0x77, kPage);
  EXPECT_TRUE(hm.MovePageSync(*page, DeviceKind::kGpu).IsResourceExhausted());
  EXPECT_EQ((*page)->device(), DeviceKind::kCpu);
  EXPECT_EQ((*page)->data_ptr()[100], std::byte{0x77});
}

TEST(HierarchicalMemoryTest, MoveStatsAccumulate) {
  HierarchicalMemory hm(SmallOptions());
  auto page = hm.CreatePage(DeviceKind::kCpu);
  ASSERT_TRUE(page.ok());
  ASSERT_TRUE(hm.MovePageSync(*page, DeviceKind::kGpu).ok());
  ASSERT_TRUE(hm.MovePageSync(*page, DeviceKind::kCpu).ok());
  ASSERT_TRUE(hm.MovePageSync(*page, DeviceKind::kGpu).ok());
  const MoveStats up = hm.move_stats(DeviceKind::kCpu, DeviceKind::kGpu);
  const MoveStats down = hm.move_stats(DeviceKind::kGpu, DeviceKind::kCpu);
  EXPECT_EQ(up.moves, 2u);
  EXPECT_EQ(up.bytes, 2 * kPage);
  EXPECT_EQ(down.moves, 1u);
}

TEST(HierarchicalMemoryTest, FragmentationAccounting) {
  HierarchicalMemory hm(SmallOptions());
  auto page = hm.CreatePage(DeviceKind::kCpu);
  ASSERT_TRUE(page.ok());
  ASSERT_TRUE((*page)->Allocate(1000, 1).ok());
  ASSERT_TRUE((*page)->Allocate(1000, 2).ok());
  ASSERT_TRUE((*page)->Release(1).ok());
  EXPECT_EQ(hm.FragmentedBytes(), 1000u);
  ASSERT_TRUE((*page)->Release(2).ok());
  EXPECT_EQ(hm.FragmentedBytes(), 0u);
}

TEST(HierarchicalMemoryTest, CreateContiguousPagesAreAdjacent) {
  HierarchicalMemory hm(SmallOptions());
  auto pages = hm.CreateContiguousPages(DeviceKind::kCpu, 3);
  ASSERT_TRUE(pages.ok());
  ASSERT_EQ(pages->size(), 3u);
  for (size_t i = 1; i < pages->size(); ++i) {
    EXPECT_EQ((*pages)[i]->data_ptr(),
              (*pages)[i - 1]->data_ptr() + kPage);
  }
  EXPECT_TRUE(hm.CreateContiguousPages(DeviceKind::kSsd, 2)
                  .status()
                  .IsInvalidArgument());
  for (Page* page : *pages) ASSERT_TRUE(hm.DestroyPage(page).ok());
}

TEST(HierarchicalMemoryTest, MemoryReportShowsTiersAndMoves) {
  HierarchicalMemory hm(SmallOptions());
  auto page = hm.CreatePage(DeviceKind::kCpu);
  ASSERT_TRUE(page.ok());
  ASSERT_TRUE(hm.MovePageSync(*page, DeviceKind::kGpu).ok());
  const MemorySnapshot snapshot = hm.Snapshot();
  EXPECT_EQ(snapshot.live_pages, 1u);
  EXPECT_EQ(snapshot.tier(DeviceKind::kGpu).pages, 1u);
  EXPECT_EQ(snapshot.tier(DeviceKind::kCpu).pages, 0u);
  EXPECT_EQ(snapshot.link(DeviceKind::kCpu, DeviceKind::kGpu).moves, 1u);
  EXPECT_EQ(snapshot.tier(DeviceKind::kGpu).used_bytes, kPage);
  const std::string report = FormatMemoryReport(snapshot);
  EXPECT_NE(report.find("gpu:"), std::string::npos);
  EXPECT_NE(report.find("cpu:"), std::string::npos);
  EXPECT_NE(report.find("moves cpu->gpu: 1"), std::string::npos);
  EXPECT_NE(report.find("1 live pages"), std::string::npos);
}

TEST(HierarchicalMemoryTest, SsdRoundTripPreservesEveryByte) {
  HierarchicalMemory hm(SmallOptions());
  auto page = hm.CreatePage(DeviceKind::kCpu);
  ASSERT_TRUE(page.ok());
  for (size_t i = 0; i < kPage; ++i) {
    (*page)->data_ptr()[i] = std::byte((i * 131 + 17) & 0xFF);
  }
  ASSERT_TRUE(hm.MovePageSync(*page, DeviceKind::kSsd).ok());
  ASSERT_TRUE(hm.MovePageSync(*page, DeviceKind::kCpu).ok());
  for (size_t i = 0; i < kPage; ++i) {
    ASSERT_EQ((*page)->data_ptr()[i], std::byte((i * 131 + 17) & 0xFF))
        << "at " << i;
  }
}

}  // namespace
}  // namespace angelptm::mem
