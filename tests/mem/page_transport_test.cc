#include "mem/page_transport.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace angelptm::mem {
namespace {

constexpr size_t kPage = 64 * 1024;

HierarchicalMemoryOptions Options(const char* tag) {
  HierarchicalMemoryOptions o;
  o.page_bytes = kPage;
  o.gpu_capacity_bytes = 4 * kPage;
  o.cpu_capacity_bytes = 16 * kPage;
  o.ssd_capacity_bytes = 16 * kPage;
  o.ssd_path = std::string("/tmp/angelptm_pt_") + tag + "_" +
               std::to_string(::getpid()) + ".bin";
  return o;
}

TEST(PageTransportTest, SendReceivePreservesBytes) {
  HierarchicalMemory server_a(Options("a"));
  HierarchicalMemory server_b(Options("b"));
  PageTransport transport;
  ASSERT_TRUE(transport.RegisterServer(0, &server_a).ok());
  ASSERT_TRUE(transport.RegisterServer(1, &server_b).ok());

  auto page = server_a.CreatePage(DeviceKind::kCpu);
  ASSERT_TRUE(page.ok());
  for (size_t i = 0; i < kPage; ++i) {
    (*page)->data_ptr()[i] = std::byte((i * 37) & 0xFF);
  }
  ASSERT_TRUE(transport.Send(1, **page).ok());
  EXPECT_EQ(transport.InFlight(1), 1u);
  EXPECT_EQ(transport.bytes_sent(), kPage);

  auto received = transport.Receive(1, DeviceKind::kCpu);
  ASSERT_TRUE(received.ok());
  EXPECT_EQ((*received)->device(), DeviceKind::kCpu);
  for (size_t i = 0; i < kPage; i += 733) {
    ASSERT_EQ((*received)->data_ptr()[i], std::byte((i * 37) & 0xFF));
  }
  // Sender's page untouched.
  EXPECT_EQ((*page)->data_ptr()[0], std::byte{0});
  EXPECT_EQ(transport.InFlight(1), 0u);
}

TEST(PageTransportTest, BytesSentIsRaceFreeUnderConcurrentSends) {
  // Regression: bytes_sent() read bytes_sent_ without mutex_, so a reader
  // polling transfer progress raced senders mid-Send. The reader now
  // locks: the counter must be monotonic and land exactly on the bytes
  // shipped (TSan enforces the "no torn read" half).
  HierarchicalMemory server(Options("race"));
  PageTransport transport;
  ASSERT_TRUE(transport.RegisterServer(0, &server).ok());
  auto page = server.CreatePage(DeviceKind::kCpu);
  ASSERT_TRUE(page.ok());

  constexpr int kSenders = 2;
  constexpr int kSendsEach = 8;
  std::atomic<bool> done{false};
  std::thread reader([&] {
    uint64_t last = 0;
    while (!done.load()) {
      const uint64_t now = transport.bytes_sent();
      EXPECT_GE(now, last);
      last = now;
    }
  });
  std::vector<std::thread> senders;
  for (int t = 0; t < kSenders; ++t) {
    senders.emplace_back([&] {
      for (int i = 0; i < kSendsEach; ++i) {
        EXPECT_TRUE(transport.Send(0, **page).ok());
      }
    });
  }
  for (auto& sender : senders) sender.join();
  done.store(true);
  reader.join();
  EXPECT_EQ(transport.bytes_sent(), uint64_t{kSenders * kSendsEach} * kPage);
  EXPECT_EQ(transport.InFlight(0), size_t{kSenders * kSendsEach});
}

TEST(PageTransportTest, FifoOrderPerDestination) {
  HierarchicalMemory server(Options("fifo"));
  PageTransport transport;
  ASSERT_TRUE(transport.RegisterServer(0, &server).ok());
  auto page = server.CreatePage(DeviceKind::kCpu);
  ASSERT_TRUE(page.ok());
  for (int i = 0; i < 3; ++i) {
    std::memset((*page)->data_ptr(), i + 1, kPage);
    ASSERT_TRUE(transport.Send(0, **page).ok());
  }
  for (int i = 0; i < 3; ++i) {
    auto received = transport.TryReceive(0, DeviceKind::kCpu);
    ASSERT_TRUE(received.ok());
    EXPECT_EQ((*received)->data_ptr()[100], std::byte(i + 1));
    ASSERT_TRUE(server.DestroyPage(*received).ok());
  }
}

TEST(PageTransportTest, ReceiveDirectlyOntoSsdTier) {
  HierarchicalMemory server(Options("ssd"));
  PageTransport transport;
  ASSERT_TRUE(transport.RegisterServer(0, &server).ok());
  auto page = server.CreatePage(DeviceKind::kCpu);
  ASSERT_TRUE(page.ok());
  std::memset((*page)->data_ptr(), 0x7E, kPage);
  ASSERT_TRUE(transport.Send(0, **page).ok());
  auto received = transport.Receive(0, DeviceKind::kSsd);
  ASSERT_TRUE(received.ok());
  EXPECT_EQ((*received)->device(), DeviceKind::kSsd);
  // Round-trip back to memory and verify.
  ASSERT_TRUE(server.MovePageSync(*received, DeviceKind::kCpu).ok());
  EXPECT_EQ((*received)->data_ptr()[kPage - 1], std::byte{0x7E});
}

TEST(PageTransportTest, BlockingReceiveWakesOnSend) {
  HierarchicalMemory server(Options("blocking"));
  PageTransport transport;
  ASSERT_TRUE(transport.RegisterServer(0, &server).ok());
  Page* landed = nullptr;
  std::thread receiver([&] {
    auto received = transport.Receive(0, DeviceKind::kCpu);
    ASSERT_TRUE(received.ok());
    landed = *received;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  auto page = server.CreatePage(DeviceKind::kCpu);
  ASSERT_TRUE(page.ok());
  std::memset((*page)->data_ptr(), 0x11, kPage);
  ASSERT_TRUE(transport.Send(0, **page).ok());
  receiver.join();
  ASSERT_NE(landed, nullptr);
  EXPECT_EQ(landed->data_ptr()[5], std::byte{0x11});
}

TEST(PageTransportTest, ThrottlePacesWire) {
  HierarchicalMemory server(Options("throttle"));
  PageTransport transport(/*nic_bandwidth_bytes_per_sec=*/1e6);  // 1 MB/s.
  ASSERT_TRUE(transport.RegisterServer(0, &server).ok());
  auto page = server.CreatePage(DeviceKind::kCpu);
  ASSERT_TRUE(page.ok());
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(transport.Send(0, **page).ok());  // 64 KiB at 1 MB/s ~ 65 ms.
  ASSERT_TRUE(transport.Send(0, **page).ok());
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GE(elapsed, 0.08);
}

TEST(PageTransportTest, ErrorsAreStatuses) {
  HierarchicalMemory server(Options("err"));
  PageTransport transport;
  auto page = server.CreatePage(DeviceKind::kCpu);
  ASSERT_TRUE(page.ok());
  EXPECT_TRUE(transport.Send(7, **page).IsNotFound());
  EXPECT_TRUE(transport.TryReceive(7, DeviceKind::kCpu).status().IsNotFound());
  ASSERT_TRUE(transport.RegisterServer(0, &server).ok());
  EXPECT_EQ(transport.RegisterServer(0, &server).code(),
            util::StatusCode::kAlreadyExists);
  EXPECT_TRUE(
      transport.TryReceive(0, DeviceKind::kCpu).status().IsNotFound());
  // SSD-resident pages cannot be sent directly.
  ASSERT_TRUE(server.MovePageSync(*page, DeviceKind::kSsd).ok());
  EXPECT_EQ(transport.Send(0, **page).code(),
            util::StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace angelptm::mem
