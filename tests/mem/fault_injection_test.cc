#include <unistd.h>

#include <cstring>
#include <future>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mem/copy_engine.h"
#include "mem/hierarchical_memory.h"
#include "mem/ssd_tier.h"
#include "util/fault_injector.h"

namespace angelptm::mem {
namespace {

constexpr size_t kFrame = 4096;

/// Fault-injected error-path coverage for the memory hierarchy: every test
/// arms a failpoint, drives the normal API, and asserts the error either
/// gets absorbed (retry policy) or propagates losslessly to the caller.
class MemFaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { util::FaultInjector::Instance().Reset(); }
  void TearDown() override { util::FaultInjector::Instance().Reset(); }

  static util::FaultInjector& fi() { return util::FaultInjector::Instance(); }

  static void ArmPermanent(const char* site) {
    util::FaultRule rule;
    rule.permanent = true;
    fi().Arm(site, rule);
  }

  static void ArmNth(const char* site, int64_t nth) {
    util::FaultRule rule;
    rule.nth_call = nth;
    fi().Arm(site, rule);
  }

  static std::string TempPath(const char* tag) {
    return std::string("/tmp/angelptm_fault_test_") + tag + "_" +
           std::to_string(::getpid()) + ".bin";
  }

  static SsdTier::Options TierOptions(const char* tag, uint64_t frames) {
    SsdTier::Options o;
    o.path = TempPath(tag);
    o.capacity_bytes = frames * kFrame;
    o.frame_bytes = kFrame;
    o.retry.base_backoff_us = 1;  // Keep test retries fast.
    o.retry.max_backoff_us = 10;
    return o;
  }

  static HierarchicalMemoryOptions MemoryOptions(const char* tag) {
    HierarchicalMemoryOptions o;
    o.page_bytes = kFrame;
    o.gpu_capacity_bytes = 8 * kFrame;
    o.cpu_capacity_bytes = 16 * kFrame;
    o.ssd_capacity_bytes = 8 * kFrame;
    o.ssd_path = TempPath(tag);
    o.ssd_retry.base_backoff_us = 1;
    o.ssd_retry.max_backoff_us = 10;
    return o;
  }
};

TEST_F(MemFaultInjectionTest, TransientWriteFaultAbsorbedByRetry) {
  SsdTier tier;
  ASSERT_TRUE(tier.Open(TierOptions("wtrans", 4)).ok());
  auto offset = tier.AcquireFrame();
  ASSERT_TRUE(offset.ok());
  ArmNth("ssd.pwrite", 1);  // First attempt fails; the retry succeeds.

  std::vector<std::byte> data(kFrame, std::byte{0x5A});
  ASSERT_TRUE(tier.WriteFrame(*offset, data.data(), kFrame).ok());
  EXPECT_EQ(tier.Snapshot().io_retries, 1u);
  EXPECT_EQ(fi().fires("ssd.pwrite"), 1u);
  EXPECT_EQ(fi().calls("ssd.pwrite"), 2u);  // Failed attempt + retry.

  // The data written by the successful retry is intact.
  std::vector<std::byte> back(kFrame);
  ASSERT_TRUE(tier.ReadFrame(*offset, back.data(), kFrame).ok());
  EXPECT_EQ(back[kFrame - 1], std::byte{0x5A});
  // Failed attempts don't count toward bytes written.
  EXPECT_EQ(tier.Snapshot().bytes_written, kFrame);
}

TEST_F(MemFaultInjectionTest, TransientReadFaultAbsorbedByRetry) {
  SsdTier tier;
  ASSERT_TRUE(tier.Open(TierOptions("rtrans", 4)).ok());
  auto offset = tier.AcquireFrame();
  ASSERT_TRUE(offset.ok());
  std::vector<std::byte> data(kFrame, std::byte{0x77});
  ASSERT_TRUE(tier.WriteFrame(*offset, data.data(), kFrame).ok());

  ArmNth("ssd.pread", 1);
  std::vector<std::byte> back(kFrame);
  ASSERT_TRUE(tier.ReadFrame(*offset, back.data(), kFrame).ok());
  EXPECT_EQ(back[0], std::byte{0x77});
  EXPECT_EQ(tier.Snapshot().io_retries, 1u);
}

TEST_F(MemFaultInjectionTest, PermanentWriteFaultExhaustsRetries) {
  SsdTier tier;
  auto options = TierOptions("wperm", 4);
  options.retry.max_attempts = 3;
  ASSERT_TRUE(tier.Open(options).ok());
  auto offset = tier.AcquireFrame();
  ASSERT_TRUE(offset.ok());
  ArmPermanent("ssd.pwrite");

  std::vector<std::byte> data(kFrame, std::byte{1});
  EXPECT_TRUE(tier.WriteFrame(*offset, data.data(), kFrame).IsIoError());
  EXPECT_EQ(fi().calls("ssd.pwrite"), 3u);       // Every attempt was made...
  const SsdTier::Stats stats = tier.Snapshot();
  EXPECT_EQ(stats.io_retries, 2u);               // ...after 2 backoffs.
  EXPECT_EQ(stats.bytes_written, 0u);
}

TEST_F(MemFaultInjectionTest, SingleAttemptPolicySurfacesImmediately) {
  SsdTier tier;
  auto options = TierOptions("noretry", 4);
  options.retry.max_attempts = 1;
  ASSERT_TRUE(tier.Open(options).ok());
  auto offset = tier.AcquireFrame();
  ASSERT_TRUE(offset.ok());
  ArmNth("ssd.pread", 1);

  std::vector<std::byte> back(kFrame);
  EXPECT_TRUE(tier.ReadFrame(*offset, back.data(), kFrame).IsIoError());
  EXPECT_EQ(fi().calls("ssd.pread"), 1u);
  EXPECT_EQ(tier.Snapshot().io_retries, 0u);
}

TEST_F(MemFaultInjectionTest, NonIoErrorsAreNotRetried) {
  SsdTier tier;
  ASSERT_TRUE(tier.Open(TierOptions("nonio", 4)).ok());
  auto offset = tier.AcquireFrame();
  ASSERT_TRUE(offset.ok());
  util::FaultRule rule;
  rule.permanent = true;
  rule.code = util::StatusCode::kCancelled;
  fi().Arm("ssd.pwrite", rule);

  std::vector<std::byte> data(kFrame, std::byte{1});
  EXPECT_EQ(tier.WriteFrame(*offset, data.data(), kFrame).code(),
            util::StatusCode::kCancelled);
  EXPECT_EQ(fi().calls("ssd.pwrite"), 1u);  // No retry for non-IoError.
}

TEST_F(MemFaultInjectionTest, FailedStageOutReleasesSsdFrame) {
  HierarchicalMemory memory(MemoryOptions("stageout"));
  auto page = memory.CreatePage(DeviceKind::kCpu);
  ASSERT_TRUE(page.ok());
  std::memset((*page)->data_ptr(), 0x42, kFrame);
  const size_t free_before = memory.ssd()->free_frames();

  ArmPermanent("ssd.pwrite");
  EXPECT_TRUE(memory.MovePageSync(*page, DeviceKind::kSsd).IsIoError());
  // The page stays intact on its source tier and the acquired SSD frame
  // was returned to the free list — no leak on the error path.
  EXPECT_EQ((*page)->device(), DeviceKind::kCpu);
  EXPECT_EQ((*page)->data_ptr()[0], std::byte{0x42});
  EXPECT_EQ(memory.ssd()->free_frames(), free_before);

  // The tier recovers once the fault clears.
  fi().Reset();
  EXPECT_TRUE(memory.MovePageSync(*page, DeviceKind::kSsd).ok());
  EXPECT_EQ((*page)->device(), DeviceKind::kSsd);
}

TEST_F(MemFaultInjectionTest, FailedStageInKeepsPageOnSsd) {
  HierarchicalMemory memory(MemoryOptions("stagein"));
  auto page = memory.CreatePage(DeviceKind::kCpu);
  ASSERT_TRUE(page.ok());
  std::memset((*page)->data_ptr(), 0x24, kFrame);
  ASSERT_TRUE(memory.MovePageSync(*page, DeviceKind::kSsd).ok());
  const uint64_t cpu_used_before = memory.used_bytes(DeviceKind::kCpu);

  ArmPermanent("ssd.pread");
  EXPECT_TRUE(memory.MovePageSync(*page, DeviceKind::kCpu).IsIoError());
  EXPECT_EQ((*page)->device(), DeviceKind::kSsd);
  // The CPU frame acquired for the failed stage-in was released.
  EXPECT_EQ(memory.used_bytes(DeviceKind::kCpu), cpu_used_before);

  fi().Reset();
  ASSERT_TRUE(memory.MovePageSync(*page, DeviceKind::kCpu).ok());
  EXPECT_EQ((*page)->data_ptr()[0], std::byte{0x24});
}

TEST_F(MemFaultInjectionTest, MovePageFailpointFiresBeforeAnyWork) {
  HierarchicalMemory memory(MemoryOptions("movefp"));
  auto page = memory.CreatePage(DeviceKind::kCpu);
  ASSERT_TRUE(page.ok());
  util::FaultRule rule;
  rule.permanent = true;
  rule.code = util::StatusCode::kInternal;
  fi().Arm("hmem.move_page", rule);
  EXPECT_EQ(memory.MovePageSync(*page, DeviceKind::kGpu).code(),
            util::StatusCode::kInternal);
  EXPECT_EQ((*page)->device(), DeviceKind::kCpu);
  EXPECT_EQ(memory.move_stats(DeviceKind::kCpu, DeviceKind::kGpu).moves, 0u);
}

TEST_F(MemFaultInjectionTest, CopyEngineMoveFailureSurfacesThroughFuture) {
  HierarchicalMemory memory(MemoryOptions("cemove"));
  CopyEngine engine(&memory, 2);
  auto page = memory.CreatePage(DeviceKind::kCpu);
  ASSERT_TRUE(page.ok());
  ArmPermanent("copy_engine.move");

  auto future = engine.MoveAsync(*page, DeviceKind::kGpu);
  const util::Status status = future.get();
  EXPECT_TRUE(status.IsIoError());
  EXPECT_EQ((*page)->device(), DeviceKind::kCpu);
  EXPECT_EQ(engine.Snapshot().moves_failed, 1u);
  EXPECT_EQ(engine.Snapshot().moves_completed, 0u);

  fi().Reset();
  EXPECT_TRUE(engine.MoveAsync(*page, DeviceKind::kGpu).get().ok());
  EXPECT_EQ(engine.Snapshot().moves_completed, 1u);
}

TEST_F(MemFaultInjectionTest, AsyncBackendRetriesTransientFaultPerAttempt) {
  SsdTier tier;
  auto options = TierOptions("asynctrans", 4);
  options.io_workers = 2;
  ASSERT_TRUE(tier.Open(options).ok());
  auto offset = tier.AcquireFrame();
  ASSERT_TRUE(offset.ok());
  ArmNth("ssd.pwrite", 1);  // First attempt fails inside the queue worker.

  std::vector<std::byte> data(kFrame, std::byte{0x6B});
  auto future = tier.WriteFrameAsync(*offset, data.data(), kFrame);
  ASSERT_TRUE(future.get().ok());
  // The failpoint fired per *attempt* in the worker: failed attempt + retry,
  // exactly like the synchronous backend.
  EXPECT_EQ(fi().calls("ssd.pwrite"), 2u);
  EXPECT_EQ(fi().fires("ssd.pwrite"), 1u);
  EXPECT_EQ(tier.Snapshot().io_retries, 1u);

  std::vector<std::byte> back(kFrame);
  ASSERT_TRUE(tier.ReadFrame(*offset, back.data(), kFrame).ok());
  EXPECT_EQ(back[0], std::byte{0x6B});
}

TEST_F(MemFaultInjectionTest, AsyncBackendSurfacesPermanentFaultInFuture) {
  SsdTier tier;
  auto options = TierOptions("asyncperm", 4);
  options.io_workers = 1;
  options.retry.max_attempts = 3;
  ASSERT_TRUE(tier.Open(options).ok());
  auto offset = tier.AcquireFrame();
  ASSERT_TRUE(offset.ok());
  std::vector<std::byte> data(kFrame, std::byte{1});
  ASSERT_TRUE(tier.WriteFrame(*offset, data.data(), kFrame).ok());

  ArmPermanent("ssd.pread");
  auto future = tier.ReadFrameAsync(*offset, data.data(), kFrame);
  EXPECT_TRUE(future.get().IsIoError());
  EXPECT_EQ(fi().calls("ssd.pread"), 3u);  // All attempts, then propagate.
  EXPECT_EQ(tier.Snapshot().io_retries, 2u);
  EXPECT_EQ(tier.Snapshot().bytes_read, 0u);
}

TEST_F(MemFaultInjectionTest, CoalescedBatchFailsEveryRequestItCarried) {
  SsdTier tier;
  auto options = TierOptions("batchfail", 8);
  options.io_workers = 1;
  options.io_op_latency_us = 10000;  // Stall the worker so requests coalesce.
  options.retry.max_attempts = 1;
  ASSERT_TRUE(tier.Open(options).ok());
  ArmPermanent("ssd.pwrite");

  std::vector<std::vector<std::byte>> bufs;
  std::vector<std::future<util::Status>> futures;
  for (int i = 0; i < 6; ++i) {
    auto offset = tier.AcquireFrame();
    ASSERT_TRUE(offset.ok());
    bufs.emplace_back(kFrame, std::byte(i));
    futures.push_back(
        tier.WriteFrameAsync(*offset, bufs.back().data(), kFrame));
  }
  for (auto& f : futures) EXPECT_TRUE(f.get().IsIoError());
  const SsdTier::Stats stats = tier.Snapshot();
  // One failpoint evaluation per batch attempt, and at least one batch
  // carried several coalesced requests.
  EXPECT_EQ(fi().calls("ssd.pwrite"), stats.io_batches);
  EXPECT_LT(stats.io_batches, 6u);
  EXPECT_EQ(stats.bytes_written, 0u);
}

TEST_F(MemFaultInjectionTest, PageMutexMapIsGarbageCollected) {
  HierarchicalMemory memory(MemoryOptions("mutexgc"));
  CopyEngine engine(&memory, 2);
  // Move 200 distinct pages through the engine, one at a time. Without GC
  // the per-page mutex map would hold all 200 entries forever.
  for (int i = 0; i < 200; ++i) {
    auto page = memory.CreatePage(DeviceKind::kCpu);
    ASSERT_TRUE(page.ok());
    ASSERT_TRUE(engine.MoveAsync(*page, DeviceKind::kGpu).get().ok());
    ASSERT_TRUE(engine.MoveAsync(*page, DeviceKind::kCpu).get().ok());
    ASSERT_TRUE(memory.DestroyPage(*page, /*force=*/true).ok());
  }
  engine.Drain();
  const CopyEngine::Stats stats = engine.Snapshot();
  EXPECT_EQ(stats.moves_completed, 400u);
  EXPECT_EQ(stats.queue_depth, 0u);
  // Entries with no in-flight move were swept; the map stays bounded well
  // below the 200 distinct page ids it has seen.
  EXPECT_LT(stats.tracked_page_mutexes, 100u);
}

}  // namespace
}  // namespace angelptm::mem
