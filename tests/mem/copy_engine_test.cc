#include "mem/copy_engine.h"

#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace angelptm::mem {
namespace {

constexpr size_t kPage = 64 * 1024;

HierarchicalMemoryOptions Options() {
  HierarchicalMemoryOptions o;
  o.page_bytes = kPage;
  o.gpu_capacity_bytes = 8 * kPage;
  o.cpu_capacity_bytes = 16 * kPage;
  o.ssd_capacity_bytes = 32 * kPage;
  o.ssd_path = "/tmp/angelptm_ce_test_" + std::to_string(::getpid()) + ".bin";
  return o;
}

TEST(CopyEngineTest, AsyncMoveCompletesWithContents) {
  HierarchicalMemory hm(Options());
  CopyEngine engine(&hm, 2);
  auto page = hm.CreatePage(DeviceKind::kCpu);
  ASSERT_TRUE(page.ok());
  std::memset((*page)->data_ptr(), 0x3D, kPage);

  auto future = engine.MoveAsync(*page, DeviceKind::kGpu);
  ASSERT_TRUE(future.get().ok());
  EXPECT_EQ((*page)->device(), DeviceKind::kGpu);
  EXPECT_EQ((*page)->data_ptr()[kPage - 1], std::byte{0x3D});
  EXPECT_EQ(engine.Snapshot().moves_completed, 1u);
}

TEST(CopyEngineTest, ManyConcurrentMovesAllLand) {
  HierarchicalMemory hm(Options());
  CopyEngine engine(&hm, 4);
  std::vector<Page*> pages;
  for (int i = 0; i < 8; ++i) {
    auto page = hm.CreatePage(DeviceKind::kCpu);
    ASSERT_TRUE(page.ok());
    std::memset((*page)->data_ptr(), i, kPage);
    pages.push_back(*page);
  }
  std::vector<std::future<util::Status>> futures;
  futures.reserve(pages.size());
  for (auto* page : pages) {
    futures.push_back(engine.MoveAsync(page, DeviceKind::kGpu));
  }
  for (auto& f : futures) ASSERT_TRUE(f.get().ok());
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(pages[i]->device(), DeviceKind::kGpu);
    EXPECT_EQ(pages[i]->data_ptr()[0], std::byte(i));
  }
  const CopyEngine::Stats stats = engine.Snapshot();
  EXPECT_EQ(stats.moves_completed, 8u);
  EXPECT_EQ(stats.queue_depth, 0u);  // Every submitted move resolved.
}

TEST(CopyEngineTest, FailedMoveReportsThroughFuture) {
  HierarchicalMemory hm(Options());
  CopyEngine engine(&hm, 2);
  // Fill the GPU tier so further moves fail.
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(hm.CreatePage(DeviceKind::kGpu).ok());
  auto page = hm.CreatePage(DeviceKind::kCpu);
  ASSERT_TRUE(page.ok());
  auto future = engine.MoveAsync(*page, DeviceKind::kGpu);
  EXPECT_TRUE(future.get().IsResourceExhausted());
  EXPECT_EQ(engine.Snapshot().moves_failed, 1u);
  EXPECT_EQ((*page)->device(), DeviceKind::kCpu);
}

TEST(CopyEngineTest, RoundTripThroughSsdAsync) {
  HierarchicalMemory hm(Options());
  CopyEngine engine(&hm, 2);
  auto page = hm.CreatePage(DeviceKind::kGpu);
  ASSERT_TRUE(page.ok());
  for (size_t i = 0; i < kPage; ++i) {
    (*page)->data_ptr()[i] = std::byte((i ^ (i >> 8)) & 0xFF);
  }
  ASSERT_TRUE(engine.MoveAsync(*page, DeviceKind::kSsd).get().ok());
  ASSERT_TRUE(engine.MoveAsync(*page, DeviceKind::kCpu).get().ok());
  for (size_t i = 0; i < kPage; i += 509) {
    ASSERT_EQ((*page)->data_ptr()[i], std::byte((i ^ (i >> 8)) & 0xFF));
  }
}

TEST(CopyEngineTest, DrainWaitsForPending) {
  HierarchicalMemory hm(Options());
  CopyEngine engine(&hm, 1);
  std::vector<Page*> pages;
  for (int i = 0; i < 6; ++i) {
    auto page = hm.CreatePage(DeviceKind::kCpu);
    ASSERT_TRUE(page.ok());
    pages.push_back(*page);
  }
  std::vector<std::future<util::Status>> futures;
  for (auto* page : pages) {
    futures.push_back(engine.MoveAsync(page, DeviceKind::kSsd));
  }
  engine.Drain();
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
  EXPECT_EQ(engine.Snapshot().moves_completed, 6u);
  for (auto* page : pages) EXPECT_EQ(page->device(), DeviceKind::kSsd);
}

}  // namespace
}  // namespace angelptm::mem
