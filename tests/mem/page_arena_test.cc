#include "mem/page_arena.h"

#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace angelptm::mem {
namespace {

constexpr size_t kFrame = 4096;

TEST(PageArenaTest, CapacityDividedIntoFrames) {
  PageArena arena(DeviceKind::kGpu, 10 * kFrame + 100, kFrame);
  EXPECT_EQ(arena.total_frames(), 10u);  // Remainder is dropped.
  EXPECT_EQ(arena.free_frames(), 10u);
  EXPECT_EQ(arena.capacity_bytes(), 10 * kFrame);
  EXPECT_EQ(arena.device(), DeviceKind::kGpu);
}

TEST(PageArenaTest, FramesAreDistinctAndWritable) {
  PageArena arena(DeviceKind::kCpu, 8 * kFrame, kFrame);
  std::set<std::byte*> frames;
  for (int i = 0; i < 8; ++i) {
    auto frame = arena.AcquireFrame();
    ASSERT_TRUE(frame.ok());
    std::memset(*frame, i, kFrame);  // Must be real memory.
    frames.insert(*frame);
  }
  EXPECT_EQ(frames.size(), 8u);
  EXPECT_EQ(arena.free_frames(), 0u);
}

TEST(PageArenaTest, ExhaustionReturnsResourceExhausted) {
  PageArena arena(DeviceKind::kGpu, 2 * kFrame, kFrame);
  ASSERT_TRUE(arena.AcquireFrame().ok());
  ASSERT_TRUE(arena.AcquireFrame().ok());
  EXPECT_TRUE(arena.AcquireFrame().status().IsResourceExhausted());
}

TEST(PageArenaTest, ReleaseMakesFrameReusable) {
  PageArena arena(DeviceKind::kGpu, kFrame, kFrame);
  auto frame = arena.AcquireFrame();
  ASSERT_TRUE(frame.ok());
  arena.ReleaseFrame(*frame);
  EXPECT_EQ(arena.free_frames(), 1u);
  auto again = arena.AcquireFrame();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *frame);
}

TEST(PageArenaTest, NoExternalFragmentationUnderChurn) {
  // The core claim of page-based organization: any alloc/free pattern of
  // fixed-size frames leaves the arena able to satisfy all capacity.
  PageArena arena(DeviceKind::kGpu, 16 * kFrame, kFrame);
  std::vector<std::byte*> held;
  for (int round = 0; round < 50; ++round) {
    // Acquire a prime-ish number, release every other one.
    while (held.size() < 13) {
      auto f = arena.AcquireFrame();
      ASSERT_TRUE(f.ok());
      held.push_back(*f);
    }
    for (size_t i = 0; i < held.size(); i += 2) {
      arena.ReleaseFrame(held[i]);
    }
    std::vector<std::byte*> kept;
    for (size_t i = 1; i < held.size(); i += 2) kept.push_back(held[i]);
    held = kept;
  }
  for (auto* f : held) arena.ReleaseFrame(f);
  EXPECT_EQ(arena.free_frames(), 16u);
  // Full capacity still allocatable in one run.
  for (int i = 0; i < 16; ++i) ASSERT_TRUE(arena.AcquireFrame().ok());
}

TEST(PageArenaTest, PeakUsageTracked) {
  PageArena arena(DeviceKind::kGpu, 4 * kFrame, kFrame);
  auto a = arena.AcquireFrame();
  auto b = arena.AcquireFrame();
  auto c = arena.AcquireFrame();
  arena.ReleaseFrame(*b);
  arena.ReleaseFrame(*c);
  EXPECT_EQ(arena.peak_used_frames(), 3u);
  EXPECT_EQ(arena.used_frames(), 1u);
  arena.ReleaseFrame(*a);
}

TEST(PageArenaTest, OwnsIdentifiesArenaPointers) {
  PageArena arena(DeviceKind::kGpu, 2 * kFrame, kFrame);
  auto frame = arena.AcquireFrame();
  ASSERT_TRUE(frame.ok());
  EXPECT_TRUE(arena.Owns(*frame));
  std::byte local;
  EXPECT_FALSE(arena.Owns(&local));
}

TEST(PageArenaTest, ContiguousRunFromFreshArena) {
  PageArena arena(DeviceKind::kCpu, 8 * kFrame, kFrame);
  auto run = arena.AcquireContiguousFrames(4);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(arena.Owns(*run));
  EXPECT_EQ(arena.free_frames(), 4u);
  // The run is truly adjacent: releasing each frame individually works.
  for (int i = 0; i < 4; ++i) arena.ReleaseFrame(*run + i * kFrame);
  EXPECT_EQ(arena.free_frames(), 8u);
}

TEST(PageArenaTest, ContiguousRunSkipsHoles) {
  PageArena arena(DeviceKind::kCpu, 6 * kFrame, kFrame);
  // Occupy frames 0..5, then free {0, 2, 3, 4}: the only 3-run is 2..4.
  std::vector<std::byte*> frames;
  for (int i = 0; i < 6; ++i) frames.push_back(*arena.AcquireFrame());
  arena.ReleaseFrame(frames[0]);
  arena.ReleaseFrame(frames[2]);
  arena.ReleaseFrame(frames[3]);
  arena.ReleaseFrame(frames[4]);
  auto run = arena.AcquireContiguousFrames(3);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(*run, frames[2]);
  // Frame 0 is still free but no 2-run exists now.
  EXPECT_EQ(arena.free_frames(), 1u);
  EXPECT_TRUE(arena.AcquireContiguousFrames(2).status().IsResourceExhausted());
  EXPECT_TRUE(arena.AcquireContiguousFrames(1).ok());
}

TEST(PageArenaTest, ContiguousRunFailsWhenFragmented) {
  PageArena arena(DeviceKind::kCpu, 6 * kFrame, kFrame);
  std::vector<std::byte*> frames;
  for (int i = 0; i < 6; ++i) frames.push_back(*arena.AcquireFrame());
  // Free every other frame: 3 free frames, no run of 2.
  arena.ReleaseFrame(frames[0]);
  arena.ReleaseFrame(frames[2]);
  arena.ReleaseFrame(frames[4]);
  EXPECT_TRUE(
      arena.AcquireContiguousFrames(2).status().IsResourceExhausted());
}

TEST(PageArenaTest, ContiguousRunValidation) {
  PageArena arena(DeviceKind::kCpu, 4 * kFrame, kFrame);
  EXPECT_TRUE(arena.AcquireContiguousFrames(0).status().IsInvalidArgument());
  EXPECT_TRUE(
      arena.AcquireContiguousFrames(5).status().IsResourceExhausted());
}

TEST(PageArenaTest, ConcurrentAcquireRelease) {
  PageArena arena(DeviceKind::kCpu, 64 * kFrame, kFrame);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        auto f = arena.AcquireFrame();
        if (f.ok()) {
          (*f)[0] = std::byte{1};
          arena.ReleaseFrame(*f);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(arena.free_frames(), 64u);
}

}  // namespace
}  // namespace angelptm::mem
