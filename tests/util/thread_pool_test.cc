#include "util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace angelptm::util {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(pool.Submit([&] { counter.fetch_add(1); }));
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, WaitBlocksUntilIdle) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(pool.Submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      done.fetch_add(1);
    }));
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  ASSERT_TRUE(pool.Submit([&] { ran = true; }));
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, ShutdownDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(pool.Submit([&] { counter.fetch_add(1); }));
    }
    pool.Shutdown();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, SubmitAfterShutdownIsRejected) {
  ThreadPool pool(1);
  pool.Shutdown();
  std::atomic<bool> ran{false};
  EXPECT_FALSE(pool.Submit([&] { ran = true; }));
  EXPECT_FALSE(ran.load());
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(pool.Submit([&] {
      const int now = in_flight.fetch_add(1) + 1;
      int seen = max_in_flight.load();
      while (seen < now && !max_in_flight.compare_exchange_weak(seen, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      in_flight.fetch_sub(1);
    }));
  }
  pool.Wait();
  EXPECT_GE(max_in_flight.load(), 2);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // Must not hang.
  SUCCEED();
}

}  // namespace
}  // namespace angelptm::util
