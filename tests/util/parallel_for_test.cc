#include "util/parallel_for.h"

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "util/thread_pool.h"

namespace angelptm::util {
namespace {

TEST(ParallelForTest, EmptyRangeRunsNothing) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  ParallelFor(&pool, 5, 5, 1, [&](size_t, size_t) { calls.fetch_add(1); });
  ParallelFor(&pool, 7, 3, 1, [&](size_t, size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const size_t count = 10007;  // Prime: never a multiple of the grain.
  std::vector<std::atomic<int>> hits(count);
  for (auto& h : hits) h.store(0);
  ParallelFor(&pool, 0, count, 64, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < count; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, GrainLargerThanRangeRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  size_t seen_lo = 99, seen_hi = 0;
  ParallelFor(&pool, 2, 9, 100, [&](size_t lo, size_t hi) {
    calls.fetch_add(1);
    seen_lo = lo;
    seen_hi = hi;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen_lo, 2u);
  EXPECT_EQ(seen_hi, 9u);
}

TEST(ParallelForTest, NullPoolRunsInline) {
  std::atomic<int> total{0};
  ParallelFor(nullptr, 0, 100, 7, [&](size_t lo, size_t hi) {
    total.fetch_add(int(hi - lo));
  });
  EXPECT_EQ(total.load(), 100);
}

TEST(ParallelForTest, ChunkIndicesAreDenseAndGrainAligned) {
  ThreadPool pool(4);
  const size_t begin = 3, end = 103, grain = 10;
  const size_t num_chunks = ParallelForNumChunks(begin, end, grain);
  EXPECT_EQ(num_chunks, 10u);
  std::vector<std::atomic<int>> chunk_hits(num_chunks);
  for (auto& h : chunk_hits) h.store(0);
  ParallelForChunks(&pool, begin, end, grain,
                    [&](size_t chunk, size_t lo, size_t hi) {
                      EXPECT_EQ(lo, begin + chunk * grain);
                      EXPECT_EQ(hi, std::min(end, lo + grain));
                      chunk_hits[chunk].fetch_add(1);
                    });
  for (size_t c = 0; c < num_chunks; ++c) {
    EXPECT_EQ(chunk_hits[c].load(), 1) << "chunk " << c;
  }
}

TEST(ParallelForTest, ShutdownPoolStillCompletesOnCallingThread) {
  ThreadPool pool(4);
  pool.Shutdown();
  std::atomic<int> total{0};
  ParallelFor(&pool, 0, 1000, 10, [&](size_t lo, size_t hi) {
    total.fetch_add(int(hi - lo));
  });
  EXPECT_EQ(total.load(), 1000);
}

TEST(ParallelForTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  ParallelFor(&pool, 0, 8, 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      ParallelFor(&pool, 0, 100, 10, [&](size_t ilo, size_t ihi) {
        total.fetch_add(int(ihi - ilo));
      });
    }
  });
  EXPECT_EQ(total.load(), 800);
}

TEST(ParallelForTest, SumMatchesSerial) {
  ThreadPool pool(8);
  const size_t count = 4096;
  std::vector<int> values(count);
  std::iota(values.begin(), values.end(), 1);
  const size_t grain = 100;
  const size_t num_chunks = ParallelForNumChunks(0, count, grain);
  std::vector<long> partial(num_chunks, 0);
  ParallelForChunks(&pool, 0, count, grain,
                    [&](size_t chunk, size_t lo, size_t hi) {
                      long sum = 0;
                      for (size_t i = lo; i < hi; ++i) sum += values[i];
                      partial[chunk] = sum;
                    });
  long total = 0;
  for (long p : partial) total += p;
  EXPECT_EQ(total, long(count) * long(count + 1) / 2);
}

TEST(ComputePoolTest, OverrideIsReturnedAndRestorable) {
  ThreadPool override_pool(2);
  SetComputePoolOverride(&override_pool);
  EXPECT_EQ(ComputePool(), &override_pool);
  EXPECT_EQ(ComputePoolThreads(), 2u);
  SetComputePoolOverride(nullptr);
  ThreadPool* default_pool = ComputePool();
  ASSERT_NE(default_pool, nullptr);
  EXPECT_NE(default_pool, &override_pool);
  EXPECT_GE(default_pool->num_threads(), 1u);
}

}  // namespace
}  // namespace angelptm::util
