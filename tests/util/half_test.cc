#include "util/half.h"

#include <cmath>
#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

namespace angelptm::util {
namespace {

TEST(HalfTest, ExactSmallValuesRoundTrip) {
  for (float f : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 1024.0f, -0.25f, 65504.0f}) {
    EXPECT_EQ(Half(f).ToFloat(), f) << "value " << f;
  }
}

TEST(HalfTest, SignedZero) {
  EXPECT_EQ(Half(0.0f).bits(), 0x0000);
  EXPECT_EQ(Half(-0.0f).bits(), 0x8000);
  EXPECT_EQ(Half(-0.0f).ToFloat(), 0.0f);
  EXPECT_TRUE(std::signbit(Half(-0.0f).ToFloat()));
}

TEST(HalfTest, OverflowGoesToInfinity) {
  EXPECT_TRUE(std::isinf(Half(1e6f).ToFloat()));
  EXPECT_TRUE(std::isinf(Half(-1e6f).ToFloat()));
  EXPECT_GT(Half(1e6f).ToFloat(), 0.0f);
  EXPECT_LT(Half(-1e6f).ToFloat(), 0.0f);
  // 65504 is the max finite half; 65520 rounds up to inf.
  EXPECT_TRUE(std::isinf(Half(65520.0f).ToFloat()));
}

TEST(HalfTest, NanStaysNan) {
  EXPECT_TRUE(std::isnan(Half(std::nanf("")).ToFloat()));
}

TEST(HalfTest, InfinityRoundTrips) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(Half(inf).ToFloat(), inf);
  EXPECT_EQ(Half(-inf).ToFloat(), -inf);
}

TEST(HalfTest, SubnormalsRepresentable) {
  // Smallest positive subnormal half is 2^-24.
  const float tiny = std::ldexp(1.0f, -24);
  EXPECT_EQ(Half(tiny).ToFloat(), tiny);
  // Halfway below underflows to zero under round-to-nearest-even.
  EXPECT_EQ(Half(std::ldexp(1.0f, -26)).ToFloat(), 0.0f);
}

TEST(HalfTest, RoundToNearestEven) {
  // 1 + 2^-11 is exactly between 1.0 and 1+2^-10: ties to even -> 1.0.
  EXPECT_EQ(Half(1.0f + std::ldexp(1.0f, -11)).ToFloat(), 1.0f);
  // 1 + 3*2^-11 ties between 1+2^-10 and 1+2^-9: ties to even -> 1+2^-9.
  EXPECT_EQ(Half(1.0f + 3 * std::ldexp(1.0f, -11)).ToFloat(),
            1.0f + std::ldexp(1.0f, -9));
  // Slightly above the tie rounds up.
  EXPECT_EQ(Half(1.0f + std::ldexp(1.0f, -11) + std::ldexp(1.0f, -13))
                .ToFloat(),
            1.0f + std::ldexp(1.0f, -10));
}

TEST(HalfTest, RelativeErrorBoundedForNormals) {
  // Max relative rounding error for half normals is 2^-11.
  for (float f = 0.001f; f < 60000.0f; f *= 1.37f) {
    const float back = Half(f).ToFloat();
    EXPECT_LE(std::abs(back - f) / f, std::ldexp(1.0f, -11)) << "value " << f;
  }
}

TEST(HalfTest, AllBitPatternsRoundTripThroughFloat) {
  // Every finite half value must convert to float and back to the same bits.
  for (uint32_t bits = 0; bits < 0x10000u; ++bits) {
    const uint16_t h = static_cast<uint16_t>(bits);
    const float f = HalfBitsToFloat(h);
    if (std::isnan(f)) continue;  // NaN payloads need not be preserved.
    EXPECT_EQ(FloatToHalfBits(f), h) << "bits 0x" << std::hex << bits;
  }
}

TEST(HalfTest, Arithmetic) {
  Half a(1.5f);
  Half b(2.25f);
  EXPECT_EQ((a + b).ToFloat(), 3.75f);
  EXPECT_EQ((b - a).ToFloat(), 0.75f);
  EXPECT_EQ((a * b).ToFloat(), 3.375f);
  EXPECT_EQ((b / Half(0.75f)).ToFloat(), 3.0f);
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(a == Half(1.5f));
}

TEST(BFloat16Test, ExactValuesRoundTrip) {
  for (float f :
       {0.0f, 1.0f, -2.0f, 0.5f, 128.0f, std::ldexp(1.5f, 126)}) {
    EXPECT_EQ(BFloat16(f).ToFloat(), f) << "value " << f;
  }
}

TEST(BFloat16Test, RoundToNearestEven) {
  // bf16 keeps 8 mantissa bits: 1 + 2^-9 ties to 1.0.
  EXPECT_EQ(BFloat16(1.0f + std::ldexp(1.0f, -9)).ToFloat(), 1.0f);
  EXPECT_EQ(BFloat16(1.0f + 3 * std::ldexp(1.0f, -9)).ToFloat(),
            1.0f + std::ldexp(1.0f, -7));
}

TEST(BFloat16Test, NanStaysNan) {
  EXPECT_TRUE(std::isnan(BFloat16(std::nanf("")).ToFloat()));
}

TEST(BFloat16Test, KeepsFloatExponentRange) {
  EXPECT_FALSE(std::isinf(BFloat16(1e38f).ToFloat()));
  EXPECT_GT(BFloat16(1e-38f).ToFloat(), 0.0f);
}

}  // namespace
}  // namespace angelptm::util
