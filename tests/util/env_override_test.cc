#include "util/env_override.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "util/schedule_perturb.h"

namespace angelptm::util {
namespace {

constexpr char kVar[] = "ANGELPTM_ENV_OVERRIDE_TEST_VAR";

class ScopedEnvVar {
 public:
  ScopedEnvVar(const char* name, const char* value) : name_(name) {
    const char* old = ::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnvVar() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

TEST(EnvOverrideTest, EnvIsSetDistinguishesEmptyFromUnset) {
  {
    const ScopedEnvVar unset(kVar, nullptr);
    EXPECT_FALSE(EnvIsSet(kVar));
  }
  const ScopedEnvVar empty(kVar, "");
  EXPECT_TRUE(EnvIsSet(kVar));  // Set-but-empty is still set.
}

TEST(EnvOverrideTest, SizeUnsetAndEmptyFallBack) {
  {
    const ScopedEnvVar unset(kVar, nullptr);
    EXPECT_EQ(EnvSizeOr(kVar, 7), 7u);
  }
  const ScopedEnvVar empty(kVar, "");
  EXPECT_EQ(EnvSizeOr(kVar, 7), 7u);
}

TEST(EnvOverrideTest, SizeParsesPlainIntegers) {
  const ScopedEnvVar set(kVar, "42");
  EXPECT_EQ(EnvSizeOr(kVar, 7), 42u);
}

TEST(EnvOverrideTest, SizeRejectsNonNumeric) {
  const ScopedEnvVar junk(kVar, "fast");
  EXPECT_EQ(EnvSizeOr(kVar, 7), 7u);
  const ScopedEnvVar trailing(kVar, "42x");
  EXPECT_EQ(EnvSizeOr(kVar, 7), 7u);
}

TEST(EnvOverrideTest, SizeRejectsNegativeInsteadOfWrapping) {
  // strtoull would happily parse "-3" as 2^64-3; an unsigned knob must warn
  // and fall back rather than become an astronomically large count.
  const ScopedEnvVar negative(kVar, "-3");
  EXPECT_EQ(EnvSizeOr(kVar, 7), 7u);
  const ScopedEnvVar padded_negative(kVar, "  -3");
  EXPECT_EQ(EnvSizeOr(kVar, 7), 7u);
}

TEST(EnvOverrideTest, SizeWhitespaceHandling) {
  // Leading whitespace is strtoull's documented skip; trailing whitespace
  // is a trailing character and falls back.
  const ScopedEnvVar leading(kVar, "  5");
  EXPECT_EQ(EnvSizeOr(kVar, 7), 5u);
  const ScopedEnvVar trailing(kVar, "5 ");
  EXPECT_EQ(EnvSizeOr(kVar, 7), 7u);
  const ScopedEnvVar only_space(kVar, "   ");
  EXPECT_EQ(EnvSizeOr(kVar, 7), 7u);
}

TEST(EnvOverrideTest, PositiveRejectsZeroNegativeAndJunk) {
  {
    const ScopedEnvVar zero(kVar, "0");
    EXPECT_EQ(EnvPositiveOr(kVar, 3), 3u);
  }
  {
    const ScopedEnvVar negative(kVar, "-2");
    EXPECT_EQ(EnvPositiveOr(kVar, 3), 3u);
  }
  {
    const ScopedEnvVar junk(kVar, "two");
    EXPECT_EQ(EnvPositiveOr(kVar, 3), 3u);
  }
  const ScopedEnvVar ok(kVar, "2");
  EXPECT_EQ(EnvPositiveOr(kVar, 3), 2u);
}

TEST(EnvOverrideTest, DoubleParsesAndRejects) {
  {
    const ScopedEnvVar set(kVar, "0.25");
    EXPECT_DOUBLE_EQ(EnvDoubleOr(kVar, 0.5), 0.25);
  }
  {
    const ScopedEnvVar junk(kVar, "0.25x");
    EXPECT_DOUBLE_EQ(EnvDoubleOr(kVar, 0.5), 0.5);
  }
  {
    const ScopedEnvVar inf(kVar, "inf");
    EXPECT_DOUBLE_EQ(EnvDoubleOr(kVar, 0.5), 0.5);  // Non-finite rejected.
  }
  const ScopedEnvVar unset(kVar, nullptr);
  EXPECT_DOUBLE_EQ(EnvDoubleOr(kVar, 0.5), 0.5);
}

TEST(EnvOverrideTest, StringOrFallsBackOnlyWhenUnset) {
  {
    const ScopedEnvVar unset(kVar, nullptr);
    EXPECT_EQ(EnvStringOr(kVar, "dflt"), "dflt");
  }
  {
    const ScopedEnvVar empty(kVar, "");
    EXPECT_EQ(EnvStringOr(kVar, "dflt"), "");  // Set-but-empty wins.
  }
  const ScopedEnvVar set(kVar, "value");
  EXPECT_EQ(EnvStringOr(kVar, "dflt"), "value");
}

TEST(EnvOverrideTest, OverrideBeatsEnvBeatsDefault) {
  // The documented precedence chain (DESIGN.md §13), demonstrated on a
  // subsystem that honours it end-to-end: SchedulePerturb reads
  // ANGELPTM_PERTURB_* from the environment, and ForceEnable/ForceDisable
  // are its in-process test override.
  const ScopedEnvVar seed_env("ANGELPTM_PERTURB_SEED", "31");
  const ScopedEnvVar prob_env("ANGELPTM_PERTURB_PROB", "0.5");
  SchedulePerturb& perturb = SchedulePerturb::Instance();

  perturb.ClearForce();  // 2) No override: environment wins over defaults.
  EXPECT_TRUE(perturb.enabled());
  EXPECT_EQ(perturb.seed(), 31u);

  perturb.ForceEnable(99, 1.0, 2);  // 1) Override beats the environment.
  EXPECT_EQ(perturb.seed(), 99u);
  perturb.ForceDisable();
  EXPECT_FALSE(perturb.enabled());  // ...even when env says enabled.

  {
    // 3) Neither override nor env: compiled default (disabled, seed 1).
    const ScopedEnvVar no_seed("ANGELPTM_PERTURB_SEED", nullptr);
    const ScopedEnvVar no_prob("ANGELPTM_PERTURB_PROB", nullptr);
    perturb.ClearForce();
    EXPECT_FALSE(perturb.enabled());
    EXPECT_EQ(perturb.seed(), 1u);
  }
  perturb.ClearForce();
}

}  // namespace
}  // namespace angelptm::util
