#include "util/seqlock.h"

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace angelptm::util {
namespace {

TEST(SeqLockBufferTest, SingleThreadedWriteReadRoundTrip) {
  SeqLockBuffer buffer;
  buffer.Reset(4);
  EXPECT_EQ(buffer.num_words(), 4u);
  EXPECT_EQ(buffer.version(), 0u);

  const uint32_t payload[4] = {1, 2, 3, 0xdeadbeef};
  buffer.Write(payload);
  EXPECT_EQ(buffer.version(), 2u);

  uint32_t out[4] = {};
  buffer.Read(out);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], payload[i]);

  ASSERT_TRUE(buffer.TryRead(out));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], payload[i]);
}

TEST(SeqLockBufferTest, VersionBumpsByTwoPerWrite) {
  SeqLockBuffer buffer;
  buffer.Reset(1);
  const uint32_t word = 7;
  for (int i = 1; i <= 5; ++i) {
    buffer.Write(&word);
    EXPECT_EQ(buffer.version(), uint64_t(2 * i));
  }
}

TEST(SeqLockBufferTest, ResetResizesAndRewindsVersion) {
  SeqLockBuffer buffer;
  buffer.Reset(2);
  const uint32_t words[2] = {1, 2};
  buffer.Write(words);
  buffer.Reset(8);
  EXPECT_EQ(buffer.num_words(), 8u);
  EXPECT_EQ(buffer.version(), 0u);
}

TEST(SeqLockBufferTest, NoTornReadsUnderConcurrentWrites) {
  // The central seqlock property: every snapshot a reader obtains is one
  // the writer published in full — never a mix of two writes. The writer
  // fills the whole payload with one generation value, so any torn read
  // shows up as a word mismatch. Run under TSan, this is also the torn-
  // read stress for the protocol's fences (ISSUE satellite d).
  constexpr size_t kWords = 64;
  constexpr int kReaders = 4;
  SeqLockBuffer buffer;
  buffer.Reset(kWords);
  const uint32_t zero[kWords] = {};
  buffer.Write(zero);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> inconsistent{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      uint32_t snapshot[kWords];
      while (!stop.load(std::memory_order_relaxed)) {
        buffer.Read(snapshot);
        for (size_t i = 1; i < kWords; ++i) {
          if (snapshot[i] != snapshot[0]) {
            inconsistent.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
      }
    });
  }

  uint32_t generation[kWords];
  for (uint32_t g = 1; g <= 20000; ++g) {
    for (size_t i = 0; i < kWords; ++i) generation[i] = g;
    buffer.Write(generation);
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(inconsistent.load(), 0u);
  EXPECT_EQ(buffer.version(), uint64_t(2 * 20001));
}

struct Pair {
  uint64_t a = 0;
  uint64_t b = 0;
};

TEST(SeqLockTest, TypedCellRoundTrip) {
  SeqLock<Pair> cell(Pair{1, 2});
  Pair got = cell.Read();
  EXPECT_EQ(got.a, 1u);
  EXPECT_EQ(got.b, 2u);
  cell.Write(Pair{10, 20});
  got = cell.Read();
  EXPECT_EQ(got.a, 10u);
  EXPECT_EQ(got.b, 20u);
  EXPECT_EQ(cell.version(), 2u);
}

TEST(SeqLockTest, TypedCellNeverTearsAcrossFields) {
  // Writer publishes {g, ~g}; readers must never observe fields from two
  // different writes.
  SeqLock<Pair> cell(Pair{0, ~uint64_t(0)});
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const Pair got = cell.Read();
        if (got.b != ~got.a) torn.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (uint64_t g = 1; g <= 50000; ++g) cell.Write(Pair{g, ~g});
  stop.store(true, std::memory_order_relaxed);
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(torn.load(), 0u);
}

}  // namespace
}  // namespace angelptm::util
