#include <atomic>
#include <chrono>
#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/bandwidth_throttle.h"
#include "util/histogram.h"
#include "util/random.h"
#include "util/table_printer.h"
#include "util/units.h"

namespace angelptm::util {
namespace {

TEST(UnitsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(kKiB), "1.00 KiB");
  EXPECT_EQ(FormatBytes(4 * kMiB), "4.00 MiB");
  EXPECT_EQ(FormatBytes(40ull * kGiB), "40.00 GiB");
  EXPECT_EQ(FormatBytes(11ull * kTiB), "11.00 TiB");
  EXPECT_EQ(FormatBytes(uint64_t(1.5 * kGiB)), "1.50 GiB");
}

TEST(UnitsTest, FormatParamCount) {
  EXPECT_EQ(FormatParamCount(1'700'000'000ull), "1.7B");
  EXPECT_EQ(FormatParamCount(175'000'000'000ull), "175.0B");
  EXPECT_EQ(FormatParamCount(1'200'000'000'000ull), "1.2T");
  EXPECT_EQ(FormatParamCount(12'000'000ull), "12.0M");
  EXPECT_EQ(FormatParamCount(42), "42");
}

TEST(UnitsTest, FormatDuration) {
  EXPECT_EQ(FormatDuration(2.5), "2.50 s");
  EXPECT_EQ(FormatDuration(0.0123), "12.30 ms");
  EXPECT_EQ(FormatDuration(12.3e-6), "12.30 us");
  EXPECT_EQ(FormatDuration(5e-9), "5 ns");
}

TEST(UnitsTest, RoundUp) {
  EXPECT_EQ(RoundUp(0, 8), 0u);
  EXPECT_EQ(RoundUp(1, 8), 8u);
  EXPECT_EQ(RoundUp(8, 8), 8u);
  EXPECT_EQ(RoundUp(9, 8), 16u);
  EXPECT_EQ(RoundUp(10, 3), 12u);
  EXPECT_EQ(RoundUp(7, 0), 7u);
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformStaysInBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
  EXPECT_EQ(rng.Uniform(0), 0u);
  EXPECT_EQ(rng.Uniform(1), 0u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0, sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, FillGaussianScalesByStddev) {
  Rng rng(13);
  std::vector<float> v(20000);
  rng.FillGaussian(&v, 0.01);
  double sum_sq = 0;
  for (float x : v) sum_sq += double(x) * x;
  EXPECT_NEAR(std::sqrt(sum_sq / v.size()), 0.01, 0.001);
}

TEST(TablePrinterTest, AlignsColumnsAndCountsRows) {
  TablePrinter table({"Model", "Params"});
  table.AddRow({"GPT3-175B", "175B"});
  table.AddSeparator();
  table.AddRow({"T5", "27B"});
  EXPECT_EQ(table.num_rows(), 2u);
  std::ostringstream os;
  table.Print(os, "Models");
  const std::string out = os.str();
  EXPECT_NE(out.find("== Models =="), std::string::npos);
  EXPECT_NE(out.find("| GPT3-175B | 175B"), std::string::npos);
  EXPECT_NE(out.find("| Model"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter table({"A", "B", "C"});
  table.AddRow({"x"});
  std::ostringstream os;
  table.Print(os);
  EXPECT_NE(os.str().find("| x"), std::string::npos);
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.14159, 4), "3.1416");
}

TEST(HistogramTest, RecordsMomentsAndPercentiles) {
  Histogram histogram(16);
  for (uint64_t v : {1, 1, 2, 2, 2, 3, 5, 9}) histogram.Record(v);
  EXPECT_EQ(histogram.count(), 8u);
  EXPECT_NEAR(histogram.Mean(), 25.0 / 8, 1e-9);
  EXPECT_EQ(histogram.Max(), 9u);
  EXPECT_EQ(histogram.Percentile(0.5), 2u);
  EXPECT_EQ(histogram.Percentile(1.0), 9u);
  EXPECT_NE(histogram.Summary().find("count=8"), std::string::npos);
}

TEST(HistogramTest, OverflowBucketClampsButTracksMax) {
  Histogram histogram(4);
  histogram.Record(100);
  EXPECT_EQ(histogram.Max(), 100u);
  EXPECT_EQ(histogram.Percentile(1.0), 4u);  // Clamped to last bucket.
}

TEST(HistogramTest, MergeAndReset) {
  Histogram a(8), b(8);
  a.Record(1);
  b.Record(3);
  b.Record(3);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.Percentile(1.0), 3u);
  a.Reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.Mean(), 0.0);
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.Percentile(0.5), 0u);
  EXPECT_EQ(histogram.Mean(), 0.0);
}

TEST(BandwidthThrottleTest, ZeroRateDoesNotSleep) {
  BandwidthThrottle throttle(0.0);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 100; ++i) throttle.Consume(1 << 20);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 0.1);
}

TEST(BandwidthThrottleTest, PacesToConfiguredRate) {
  // 100 MiB/s, consume 10 MiB -> ~0.1 s.
  BandwidthThrottle throttle(100.0 * 1024 * 1024);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 10; ++i) throttle.Consume(1 << 20);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GE(elapsed, 0.08);
  EXPECT_LT(elapsed, 0.5);
}

TEST(BandwidthThrottleTest, ConcurrentConsumeAndRetuneIsClean) {
  // Regression: Consume() read bytes_per_sec_ outside the lock, racing
  // set_rate() — a torn double read under TSan. Hammer both sides; the
  // assertion is that TSan stays quiet and the final rate is one of the
  // values written.
  BandwidthThrottle throttle(8.0e9);
  std::atomic<bool> stop{false};
  std::thread tuner([&] {
    for (int i = 0; i < 500; ++i) {
      throttle.set_rate((i % 2) != 0 ? 2.0e9 : 8.0e9);
    }
    stop.store(true);
  });
  std::vector<std::thread> consumers;
  for (int t = 0; t < 4; ++t) {
    consumers.emplace_back([&] {
      while (!stop.load()) throttle.Consume(64);
    });
  }
  tuner.join();
  for (auto& thread : consumers) thread.join();
  const double rate = throttle.rate();
  EXPECT_TRUE(rate == 2.0e9 || rate == 8.0e9);
}

}  // namespace
}  // namespace angelptm::util
