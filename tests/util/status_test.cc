#include "util/status.h"

#include <gtest/gtest.h>

namespace angelptm::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::OutOfMemory("gpu tier full");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsOutOfMemory());
  EXPECT_EQ(s.message(), "gpu tier full");
  EXPECT_EQ(s.ToString(), "OutOfMemory: gpu tier full");
}

TEST(StatusTest, AllFactoryMethodsProduceMatchingCodes) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfMemory), "OutOfMemory");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UseReturnIfError(int x) {
  ANGEL_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UseReturnIfError(1).ok());
  EXPECT_TRUE(UseReturnIfError(-1).IsInvalidArgument());
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  ANGEL_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(StatusMacrosTest, AssignOrReturnBindsAndPropagates) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_TRUE(Quarter(6).status().IsInvalidArgument());  // 6/2=3 is odd.
  EXPECT_TRUE(Quarter(5).status().IsInvalidArgument());
}

}  // namespace
}  // namespace angelptm::util
