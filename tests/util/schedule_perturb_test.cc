#include "util/schedule_perturb.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

namespace angelptm::util {
namespace {

class ScopedEnvVar {
 public:
  ScopedEnvVar(const char* name, const char* value) : name_(name) {
    const char* old = ::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnvVar() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

std::vector<SchedulePerturb::Decision> Sequence(uint64_t seed, int n,
                                                double prob,
                                                uint32_t max_us) {
  std::vector<SchedulePerturb::Decision> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(SchedulePerturb::DecisionFor(seed, uint64_t(i), prob,
                                               max_us));
  }
  return out;
}

TEST(SchedulePerturbTest, SameSeedSameSequence) {
  // The reproducibility contract: identical (seed, prob, max) replay an
  // identical injection sequence, decision by decision.
  const auto a = Sequence(42, 500, 0.3, 50);
  const auto b = Sequence(42, 500, 0.3, 50);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].inject, b[i].inject) << "index " << i;
    EXPECT_EQ(a[i].yield, b[i].yield) << "index " << i;
    EXPECT_EQ(a[i].sleep_us, b[i].sleep_us) << "index " << i;
  }
}

TEST(SchedulePerturbTest, DifferentSeedsDiverge) {
  const auto a = Sequence(1, 500, 0.3, 50);
  const auto b = Sequence(2, 500, 0.3, 50);
  int differing = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].inject != b[i].inject) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(SchedulePerturbTest, ProbabilityBoundsRespected) {
  const auto none = Sequence(7, 300, 0.0, 50);
  for (const auto& d : none) EXPECT_FALSE(d.inject);
  const auto all = Sequence(7, 300, 1.0, 50);
  for (const auto& d : all) {
    EXPECT_TRUE(d.inject);
    if (!d.yield) {
      EXPECT_GE(d.sleep_us, 1u);
      EXPECT_LE(d.sleep_us, 50u);
    }
  }
}

TEST(SchedulePerturbTest, InjectionRateTracksProbability) {
  const auto seq = Sequence(99, 10000, 0.25, 10);
  int injected = 0;
  for (const auto& d : seq) injected += d.inject ? 1 : 0;
  // 10k samples at p=0.25: expect ~2500, allow wide slack.
  EXPECT_GT(injected, 2000);
  EXPECT_LT(injected, 3000);
}

TEST(SchedulePerturbTest, ForceEnableOverridesEnvironment) {
  // Precedence: test override > environment > default (DESIGN.md §13).
  const ScopedEnvVar seed_env("ANGELPTM_PERTURB_SEED", "77");
  const ScopedEnvVar prob_env("ANGELPTM_PERTURB_PROB", "0");
  SchedulePerturb& perturb = SchedulePerturb::Instance();
  perturb.ClearForce();  // Env-derived: prob 0 => disabled.
  EXPECT_FALSE(perturb.enabled());
  EXPECT_EQ(perturb.seed(), 77u);

  perturb.ForceEnable(123, 1.0, 5);  // Override beats env.
  EXPECT_TRUE(perturb.enabled());
  EXPECT_EQ(perturb.seed(), 123u);
  const uint64_t before = perturb.injections();
  perturb.MaybePerturb("test.site");
  EXPECT_EQ(perturb.decisions(), 1u);
  EXPECT_EQ(perturb.injections(), before + 1);  // p=1: always injects.

  perturb.ForceDisable();
  EXPECT_FALSE(perturb.enabled());
  perturb.MaybePerturb("test.site");
  EXPECT_EQ(perturb.decisions(), 1u);  // Disabled: no decision consumed.

  perturb.ClearForce();  // Back to env (disabled, seed 77).
  EXPECT_FALSE(perturb.enabled());
  EXPECT_EQ(perturb.seed(), 77u);
}

TEST(SchedulePerturbTest, InstanceCountersAreDeterministic) {
  SchedulePerturb& perturb = SchedulePerturb::Instance();
  perturb.ForceEnable(1234, 0.5, 3);
  for (int i = 0; i < 200; ++i) perturb.MaybePerturb("test.loop");
  const uint64_t first = perturb.injections();
  EXPECT_EQ(perturb.decisions(), 200u);

  perturb.ForceEnable(1234, 0.5, 3);  // Same seed: counters reset, replay.
  for (int i = 0; i < 200; ++i) perturb.MaybePerturb("test.loop");
  EXPECT_EQ(perturb.injections(), first);

  // And the pure sequence agrees with what the instance consumed.
  uint64_t expected = 0;
  for (int i = 0; i < 200; ++i) {
    expected +=
        SchedulePerturb::DecisionFor(1234, uint64_t(i), 0.5, 3).inject ? 1 : 0;
  }
  EXPECT_EQ(first, expected);

  perturb.ClearForce();
}

}  // namespace
}  // namespace angelptm::util
