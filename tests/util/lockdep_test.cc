#include "util/lockdep.h"

#include <gtest/gtest.h>

#include <fstream>
#include <mutex>  // lint: raw-mutex (layout assertions against std types)
#include <string>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace angelptm::util::lockdep {
namespace {

/// The Detector protocol is driven directly (fake addresses, explicit
/// OnAcquire/OnAcquired/OnRelease calls), so the graph/cycle/rank logic is
/// exercised in EVERY build — the ANGELPTM_LOCKDEP flag only gates the
/// Mutex instrumentation, which the integration tests at the bottom cover.
class LockdepDetectorTest : public ::testing::Test {
 protected:
  void Acquire(const LockClass* cls, const void* addr) {
    detector_.OnAcquire(cls, addr);
    detector_.OnAcquired(cls, addr);
  }
  void Release(const void* addr) { detector_.OnRelease(addr); }

  Detector detector_;
  ScopedCaptureViolations capture_{detector_};
};

TEST_F(LockdepDetectorTest, ConsistentOrderIsClean) {
  const LockClass* a = detector_.RegisterClass("test.a", 10);
  const LockClass* b = detector_.RegisterClass("test.b", 20);
  int ma = 0, mb = 0;
  for (int i = 0; i < 3; ++i) {
    Acquire(a, &ma);
    Acquire(b, &mb);
    Release(&mb);
    Release(&ma);
  }
  EXPECT_EQ(detector_.violation_count(), 0u);
  EXPECT_EQ(detector_.num_edges(), 1u);  // a -> b, deduped.
}

TEST_F(LockdepDetectorTest, AbbaInversionDetectedWithBothStacks) {
  // The deliberate ABBA negative test: A->B then B->A, single thread, no
  // deadlock ever occurs — detection must fire on the class graph alone.
  const LockClass* a = detector_.RegisterClass("test.abba_a", lockrank::kNoRank);
  const LockClass* b = detector_.RegisterClass("test.abba_b", lockrank::kNoRank);
  int ma = 0, mb = 0;
  Acquire(a, &ma);
  Acquire(b, &mb);
  Release(&mb);
  Release(&ma);
  ASSERT_EQ(detector_.violation_count(), 0u);

  Acquire(b, &mb);
  Acquire(a, &ma);  // Closes the cycle.
  Release(&ma);
  Release(&mb);

  ASSERT_EQ(detector_.violation_count(), 1u);
  std::vector<Violation> violations = detector_.TakeViolations();
  ASSERT_EQ(violations.size(), 1u);
  const Violation& v = violations[0];
  EXPECT_EQ(v.kind, Violation::Kind::kCycle);
  EXPECT_EQ(v.from_class, "test.abba_b");
  EXPECT_EQ(v.to_class, "test.abba_a");
  // The report names both classes and carries both acquisition stacks.
  EXPECT_NE(v.report.find("test.abba_a"), std::string::npos);
  EXPECT_NE(v.report.find("test.abba_b"), std::string::npos);
  EXPECT_NE(v.report.find("acquiring"), std::string::npos);
  EXPECT_NE(v.report.find("while holding"), std::string::npos);
  EXPECT_NE(v.report.find("closes the cycle"), std::string::npos);
  // Two stack sections, each with at least one frame line.
  const size_t first = v.report.find(" at:\n");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(v.report.find(" at:\n", first + 1), std::string::npos);
}

TEST_F(LockdepDetectorTest, TransitiveCycleDetected) {
  const LockClass* a = detector_.RegisterClass("test.t_a", lockrank::kNoRank);
  const LockClass* b = detector_.RegisterClass("test.t_b", lockrank::kNoRank);
  const LockClass* c = detector_.RegisterClass("test.t_c", lockrank::kNoRank);
  int ma = 0, mb = 0, mc = 0;
  Acquire(a, &ma);
  Acquire(b, &mb);
  Release(&mb);
  Release(&ma);
  Acquire(b, &mb);
  Acquire(c, &mc);
  Release(&mc);
  Release(&mb);
  ASSERT_EQ(detector_.violation_count(), 0u);
  // c -> a closes a 3-class cycle through the existing a -> b -> c path.
  Acquire(c, &mc);
  Acquire(a, &ma);
  Release(&ma);
  Release(&mc);
  ASSERT_EQ(detector_.violation_count(), 1u);
  const std::vector<Violation> violations = detector_.TakeViolations();
  EXPECT_EQ(violations[0].kind, Violation::Kind::kCycle);
  EXPECT_NE(violations[0].report.find("'test.t_a' -> 'test.t_b' -> 'test.t_c'"),
            std::string::npos);
}

TEST_F(LockdepDetectorTest, RankInversionReportedWithoutDeadlockOrder) {
  // Rank checking flags a declared-hierarchy violation even when no second
  // thread ever takes the opposite order (no cycle in the observed graph).
  const LockClass* outer = detector_.RegisterClass("test.outer", 10);
  const LockClass* inner = detector_.RegisterClass("test.inner", 50);
  int mo = 0, mi = 0;
  Acquire(inner, &mi);  // Innermost first...
  Acquire(outer, &mo);  // ...then outward: rank 10 under rank 50.
  Release(&mo);
  Release(&mi);
  ASSERT_EQ(detector_.violation_count(), 1u);
  const std::vector<Violation> violations = detector_.TakeViolations();
  EXPECT_EQ(violations[0].kind, Violation::Kind::kRankInversion);
  EXPECT_EQ(violations[0].from_class, "test.inner");
  EXPECT_EQ(violations[0].to_class, "test.outer");
  EXPECT_NE(violations[0].report.find("rank inversion"), std::string::npos);
}

TEST_F(LockdepDetectorTest, EqualRankNestingIsAnInversion) {
  const LockClass* a = detector_.RegisterClass("test.eq_a", 30);
  const LockClass* b = detector_.RegisterClass("test.eq_b", 30);
  int ma = 0, mb = 0;
  Acquire(a, &ma);
  Acquire(b, &mb);  // Ranks must strictly increase inward.
  Release(&mb);
  Release(&ma);
  ASSERT_EQ(detector_.violation_count(), 1u);
  EXPECT_EQ(detector_.TakeViolations()[0].kind,
            Violation::Kind::kRankInversion);
}

TEST_F(LockdepDetectorTest, SameClassNestingFlagged) {
  const LockClass* cls = detector_.RegisterClass("test.same", lockrank::kNoRank);
  int m1 = 0, m2 = 0;
  Acquire(cls, &m1);
  Acquire(cls, &m2);
  Release(&m2);
  Release(&m1);
  ASSERT_EQ(detector_.violation_count(), 1u);
  EXPECT_EQ(detector_.TakeViolations()[0].kind, Violation::Kind::kSameClass);
}

TEST_F(LockdepDetectorTest, RecursiveAcquisitionFlagged) {
  const LockClass* cls = detector_.RegisterClass("test.rec", lockrank::kNoRank);
  int m = 0;
  Acquire(cls, &m);
  detector_.OnAcquire(cls, &m);  // Re-acquire the same instance.
  Release(&m);
  ASSERT_EQ(detector_.violation_count(), 1u);
  EXPECT_EQ(detector_.TakeViolations()[0].kind, Violation::Kind::kRecursive);
}

TEST_F(LockdepDetectorTest, UnclassifiedMutexesAreInvisible) {
  // Unclassified locks can nest in any order: they carry no class identity,
  // so the graph records nothing (classification opts a mutex in).
  const LockClass* u = detector_.RegisterClass(nullptr, lockrank::kNoRank);
  int m1 = 0, m2 = 0;
  Acquire(u, &m1);
  Acquire(u, &m2);
  Release(&m2);
  Release(&m1);
  Acquire(u, &m2);
  Acquire(u, &m1);
  Release(&m1);
  Release(&m2);
  EXPECT_EQ(detector_.violation_count(), 0u);
  EXPECT_EQ(detector_.num_edges(), 0u);
}

TEST_F(LockdepDetectorTest, TryLockRecordsNoEdges) {
  const LockClass* a = detector_.RegisterClass("test.try_a", lockrank::kNoRank);
  const LockClass* b = detector_.RegisterClass("test.try_b", lockrank::kNoRank);
  int ma = 0, mb = 0;
  Acquire(a, &ma);
  detector_.OnTryAcquired(b, &mb);  // try_lock success: no dependency edge.
  Release(&mb);
  Release(&ma);
  EXPECT_EQ(detector_.num_edges(), 0u);
  EXPECT_EQ(detector_.violation_count(), 0u);
}

TEST_F(LockdepDetectorTest, RankConflictReported) {
  (void)detector_.RegisterClass("test.conflict", 10);
  (void)detector_.RegisterClass("test.conflict", 20);
  ASSERT_EQ(detector_.violation_count(), 1u);
  EXPECT_EQ(detector_.TakeViolations()[0].kind,
            Violation::Kind::kRankConflict);
}

TEST_F(LockdepDetectorTest, DumpFormatsCarryClassesAndEdges) {
  const LockClass* a = detector_.RegisterClass("test.dump_a", 10);
  const LockClass* b = detector_.RegisterClass("test.dump_b", 20);
  int ma = 0, mb = 0;
  Acquire(a, &ma);
  Acquire(b, &mb);
  Release(&mb);
  Release(&ma);

  const std::string dot = detector_.DumpDot();
  EXPECT_NE(dot.find("digraph lock_order"), std::string::npos);
  EXPECT_NE(dot.find("\"test.dump_a\" -> \"test.dump_b\""), std::string::npos);
  EXPECT_NE(dot.find("rank 10"), std::string::npos);

  const std::string json = detector_.DumpJson();
  EXPECT_NE(json.find("\"name\": \"test.dump_a\", \"rank\": 10"),
            std::string::npos);
  EXPECT_NE(json.find("\"from\": \"test.dump_a\", \"to\": \"test.dump_b\""),
            std::string::npos);
  EXPECT_NE(json.find("\"violations\": 0"), std::string::npos);

  const std::string prefix =
      ::testing::TempDir() + "/lockdep_dump_test";
  ASSERT_TRUE(detector_.WriteDump(prefix));
  std::ifstream dot_in(prefix + ".dot");
  ASSERT_TRUE(dot_in.good());
  std::ifstream json_in(prefix + ".json");
  ASSERT_TRUE(json_in.good());
}

TEST_F(LockdepDetectorTest, ResetClearsGraphAndViolations) {
  const LockClass* a = detector_.RegisterClass("test.r_a", lockrank::kNoRank);
  const LockClass* b = detector_.RegisterClass("test.r_b", lockrank::kNoRank);
  int ma = 0, mb = 0;
  Acquire(a, &ma);
  Acquire(b, &mb);
  Release(&mb);
  Release(&ma);
  EXPECT_EQ(detector_.num_edges(), 1u);
  detector_.ResetForTest();
  EXPECT_EQ(detector_.num_edges(), 0u);
  EXPECT_EQ(detector_.violation_count(), 0u);
}

TEST(LockdepShimTest, DisabledBuildIsZeroCost) {
#ifndef ANGELPTM_LOCKDEP
  // The compile-time contract from thread_annotations.h, restated where a
  // test failure (rather than a build break) points straight at it.
  static_assert(sizeof(util::Mutex) == sizeof(std::mutex),
                "default-build util::Mutex must be layout-identical to "
                "std::mutex");
  SUCCEED();
#else
  GTEST_SKIP() << "lockdep build: the shim intentionally carries state";
#endif
}

TEST(LockdepShimTest, ClassifiedConstructionCompilesInEveryBuild) {
  // The declaration spelling used across src/ must always compile; under
  // the default build the arguments are discarded.
  util::Mutex classified{"test.shim_class", lockrank::kNoRank};
  classified.Lock();
  classified.Unlock();
  SUCCEED();
}

#ifdef ANGELPTM_LOCKDEP
// Integration: the real util::Mutex shims feed Detector::Global().
TEST(LockdepIntegrationTest, RealMutexAbbaIsDetected) {
  Detector& global = Detector::Global();
  ScopedCaptureViolations capture(global);
  const std::size_t before = global.violation_count();
  {
    util::Mutex a{"test.real_abba_a"};
    util::Mutex b{"test.real_abba_b"};
    {
      util::MutexLock la(a);
      util::MutexLock lb(b);
    }
    {
      util::MutexLock lb(b);
      util::MutexLock la(a);  // ABBA: must be flagged, no deadlock needed.
    }
  }
  EXPECT_EQ(global.violation_count(), before + 1);
  bool found = false;
  for (const Violation& v : global.TakeViolations()) {
    if (v.kind == Violation::Kind::kCycle &&
        v.to_class == "test.real_abba_a") {
      found = true;
      EXPECT_NE(v.report.find("test.real_abba_b"), std::string::npos);
    }
  }
  EXPECT_TRUE(found);
}

TEST(LockdepIntegrationTest, CondVarRelockParticipates) {
  // CondVar waits relock through the instrumented lowercase path; a clean
  // producer/consumer handshake must add edges without violations.
  Detector& global = Detector::Global();
  ScopedCaptureViolations capture(global);
  const std::size_t before = global.violation_count();
  util::Mutex mu{"test.cv_mutex"};
  util::CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    util::MutexLock lock(mu);
    ready = true;
    cv.NotifyOne();
  });
  {
    util::MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
  }
  producer.join();
  EXPECT_EQ(global.violation_count(), before);
}

TEST(LockdepIntegrationTest, GlobalGraphObservesDeclaredClasses) {
  // By the time this test runs, other suites in the binary have exercised
  // classified mutexes; the global detector must know at least the classes
  // this test itself touches.
  util::Mutex mu{"test.observed", lockrank::kNoRank};
  mu.Lock();
  mu.Unlock();
  Detector& global = Detector::Global();
  EXPECT_GE(global.num_classes(), 1u);
  const std::string json = global.DumpJson();
  EXPECT_NE(json.find("test.observed"), std::string::npos);
}
#endif  // ANGELPTM_LOCKDEP

}  // namespace
}  // namespace angelptm::util::lockdep
