#include "util/fault_injector.h"

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

namespace angelptm::util {
namespace {

/// The injector is process-wide; every test starts and ends disarmed so no
/// rule leaks into other suites in this binary.
class FaultInjectorTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Instance().Reset(); }
  void TearDown() override { FaultInjector::Instance().Reset(); }

  FaultInjector& fi() { return FaultInjector::Instance(); }
};

/// A function with a failpoint, as production code would declare one.
Status GuardedOperation(const char* site) {
  ANGEL_FAULT_CHECK(site);
  return Status::OK();
}

TEST_F(FaultInjectorTest, UnarmedSiteIsOk) {
  EXPECT_FALSE(fi().enabled());
  EXPECT_TRUE(GuardedOperation("nobody.armed.this").ok());
  EXPECT_EQ(fi().calls("nobody.armed.this"), 0u);
}

TEST_F(FaultInjectorTest, NthCallFiresExactlyOnce) {
  FaultRule rule;
  rule.nth_call = 3;
  fi().Arm("t.nth", rule);
  EXPECT_TRUE(fi().enabled());
  EXPECT_TRUE(GuardedOperation("t.nth").ok());
  EXPECT_TRUE(GuardedOperation("t.nth").ok());
  EXPECT_TRUE(GuardedOperation("t.nth").IsIoError());
  EXPECT_TRUE(GuardedOperation("t.nth").ok());
  EXPECT_EQ(fi().calls("t.nth"), 4u);
  EXPECT_EQ(fi().fires("t.nth"), 1u);
}

TEST_F(FaultInjectorTest, PermanentFiresEveryCall) {
  FaultRule rule;
  rule.permanent = true;
  fi().Arm("t.perm", rule);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(GuardedOperation("t.perm").IsIoError());
  }
  EXPECT_EQ(fi().fires("t.perm"), 5u);
}

TEST_F(FaultInjectorTest, AfterCallsDelaysPermanentFault) {
  FaultRule rule;
  rule.permanent = true;
  rule.after_calls = 2;
  fi().Arm("t.after", rule);
  EXPECT_TRUE(GuardedOperation("t.after").ok());
  EXPECT_TRUE(GuardedOperation("t.after").ok());
  EXPECT_TRUE(GuardedOperation("t.after").IsIoError());
  EXPECT_TRUE(GuardedOperation("t.after").IsIoError());
}

TEST_F(FaultInjectorTest, ProbabilityEndpoints) {
  FaultRule always;
  always.probability = 1.0;
  fi().Arm("t.p1", always);
  FaultRule never;
  never.probability = 0.0;
  never.nth_call = 1000000;  // Some trigger so the rule parses as armed.
  fi().Arm("t.p0", never);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(GuardedOperation("t.p1").ok());
    EXPECT_TRUE(GuardedOperation("t.p0").ok());
  }
}

TEST_F(FaultInjectorTest, ProbabilityIsDeterministicUnderSeed) {
  FaultRule rule;
  rule.probability = 0.5;
  std::string first, second;
  for (std::string* out : {&first, &second}) {
    fi().Reset();
    fi().Seed(42);
    fi().Arm("t.seed", rule);
    for (int i = 0; i < 64; ++i) {
      out->push_back(GuardedOperation("t.seed").ok() ? '0' : '1');
    }
  }
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find('1'), std::string::npos);  // Some fired...
  EXPECT_NE(first.find('0'), std::string::npos);  // ...and some did not.
}

TEST_F(FaultInjectorTest, MaxFiresCapsInjection) {
  FaultRule rule;
  rule.permanent = true;
  rule.max_fires = 2;
  fi().Arm("t.max", rule);
  EXPECT_FALSE(GuardedOperation("t.max").ok());
  EXPECT_FALSE(GuardedOperation("t.max").ok());
  EXPECT_TRUE(GuardedOperation("t.max").ok());  // Recovered.
  EXPECT_EQ(fi().fires("t.max"), 2u);
}

TEST_F(FaultInjectorTest, CustomCodeAndMessage) {
  FaultRule rule;
  rule.permanent = true;
  rule.code = StatusCode::kResourceExhausted;
  rule.message = "disk full";
  fi().Arm("t.code", rule);
  const Status status = GuardedOperation("t.code");
  EXPECT_TRUE(status.IsResourceExhausted());
  EXPECT_EQ(status.message(), "disk full");
}

TEST_F(FaultInjectorTest, DefaultMessageNamesSiteAndCall) {
  FaultRule rule;
  rule.nth_call = 2;
  fi().Arm("t.msg", rule);
  EXPECT_TRUE(GuardedOperation("t.msg").ok());
  const Status status = GuardedOperation("t.msg");
  EXPECT_NE(status.message().find("t.msg"), std::string::npos);
  EXPECT_NE(status.message().find("#2"), std::string::npos);
}

TEST_F(FaultInjectorTest, DisarmAndResetStopFiring) {
  FaultRule rule;
  rule.permanent = true;
  fi().Arm("t.disarm", rule);
  EXPECT_FALSE(GuardedOperation("t.disarm").ok());
  fi().Disarm("t.disarm");
  EXPECT_TRUE(GuardedOperation("t.disarm").ok());
  EXPECT_FALSE(fi().enabled());

  fi().Arm("t.a", rule);
  fi().Arm("t.b", rule);
  fi().Reset();
  EXPECT_FALSE(fi().enabled());
  EXPECT_TRUE(GuardedOperation("t.a").ok());
  EXPECT_TRUE(GuardedOperation("t.b").ok());
}

TEST_F(FaultInjectorTest, RearmResetsCounters) {
  FaultRule rule;
  rule.nth_call = 1;
  fi().Arm("t.rearm", rule);
  EXPECT_FALSE(GuardedOperation("t.rearm").ok());
  fi().Arm("t.rearm", rule);  // Fresh counters: call 1 fires again.
  EXPECT_FALSE(GuardedOperation("t.rearm").ok());
}

TEST_F(FaultInjectorTest, SpecArmsMultipleSites) {
  ASSERT_TRUE(fi().ArmFromSpec(
                    "a.site=nth:2;b.site=always,code:cancelled,msg:gone;"
                    "c.site=after:1,max:1")
                  .ok());
  EXPECT_TRUE(GuardedOperation("a.site").ok());
  EXPECT_TRUE(GuardedOperation("a.site").IsIoError());

  const Status b = GuardedOperation("b.site");
  EXPECT_EQ(b.code(), StatusCode::kCancelled);
  EXPECT_EQ(b.message(), "gone");

  EXPECT_TRUE(GuardedOperation("c.site").ok());
  EXPECT_FALSE(GuardedOperation("c.site").ok());
  EXPECT_TRUE(GuardedOperation("c.site").ok());  // max:1 reached.
}

TEST_F(FaultInjectorTest, MalformedSpecsRejectedAtomically) {
  EXPECT_TRUE(fi().ArmFromSpec("no-equals-sign").IsInvalidArgument());
  EXPECT_TRUE(fi().ArmFromSpec("s=").IsInvalidArgument());
  EXPECT_TRUE(fi().ArmFromSpec("s=bogus:1").IsInvalidArgument());
  EXPECT_TRUE(fi().ArmFromSpec("s=nth:notanumber").IsInvalidArgument());
  EXPECT_TRUE(fi().ArmFromSpec("s=prob:1.5").IsInvalidArgument());
  EXPECT_TRUE(fi().ArmFromSpec("s=code:io").IsInvalidArgument());  // No trigger.
  // A bad entry poisons the whole spec: the good site must not be armed.
  EXPECT_FALSE(fi().ArmFromSpec("good=always;bad=nope:1").ok());
  EXPECT_TRUE(GuardedOperation("good").ok());
  EXPECT_FALSE(fi().enabled());
}

/// Run by scripts/check.sh with ANGELPTM_FAULT_SITES set to verify the
/// env-driven configuration path end to end; a no-op in plain runs.
TEST_F(FaultInjectorTest, EnvSpecArmsSitesWhenPresent) {
  const char* spec = std::getenv("ANGELPTM_FAULT_SITES");
  if (spec == nullptr || std::string(spec).find("check.env_probe") ==
                             std::string::npos) {
    GTEST_SKIP() << "ANGELPTM_FAULT_SITES not set for this run";
  }
  // Instance() parsed the env spec at first use, but this fixture Reset()s
  // state; re-arm from the same spec to validate the full grammar path.
  ASSERT_TRUE(fi().ArmFromSpec(spec).ok());
  EXPECT_FALSE(GuardedOperation("check.env_probe").ok());
}

}  // namespace
}  // namespace angelptm::util
