#include "model/footprint.h"

#include <cstdint>
#include <map>

#include <gtest/gtest.h>

#include "model/model_zoo.h"
#include "util/units.h"

namespace angelptm::model {
namespace {

using util::kGiB;
using util::kMiB;

TEST(FootprintTest, Table1ClosedForms) {
  // Totals must match the closed forms printed in Table 1:
  //   Params = 16 d^2 + 8 d dffn (+8d LayerNorm)
  //   Acts   = 40 b s d + 8 b s dffn (+8bs score rows)
  //   Optims = 48 d^2 + 24 d dffn (+24d LayerNorm)
  for (uint64_t d : {1024ull, 4096ull, 12288ull}) {
    const uint64_t dffn = 4 * d;
    const uint64_t b = 2, s = 1024;
    const LayerFootprint fp = ComputeLayerFootprint(b, s, d, dffn);
    EXPECT_EQ(fp.params_bytes, 16 * d * d + 8 * d * dffn + 8 * d);
    EXPECT_EQ(fp.acts_bytes, 40 * b * s * d + 8 * b * s * dffn + 8 * b * s);
    EXPECT_EQ(fp.optim_bytes, 48 * d * d + 24 * d * dffn + 24 * d);
  }
}

TEST(FootprintTest, Table1HasTwelveComponents) {
  const LayerFootprint fp = ComputeLayerFootprint(1, 2048, 12288, 49152);
  EXPECT_EQ(fp.components.size(), 12u);
  // First row is the fused QKV projection: params 12 d^2, optims 36 d^2.
  const auto& qkv = fp.components.front();
  EXPECT_EQ(qkv.layer, "Linear(Q,K,V)");
  EXPECT_EQ(qkv.params_bytes, 12ull * 12288 * 12288);
  EXPECT_EQ(qkv.optim_bytes, 36ull * 12288 * 12288);
  EXPECT_EQ(qkv.acts_bytes, 12ull * 2048 * 12288);
}

TEST(FootprintTest, OptimizerIsThreeTimesParamBytes) {
  // fp32 master+momentum+variance (12B/elem) vs fp16 param+grad (4B/elem).
  const LayerFootprint fp = ComputeLayerFootprint(1, 2048, 4096, 16384);
  EXPECT_EQ(fp.optim_bytes, 3 * fp.params_bytes);
}

TEST(FootprintTest, Gpt3MemoryUsageAnalysisOfSection22) {
  // §2.2: GPT3-175B (b=1, s=2048, d=12288, dffn=49152) consumes ~648 GB of
  // Params, ~162 GB of Acts and ~1944 GB of Optims. The paper's totals imply
  // ~90 effective layers; with the canonical 96 layers our closed forms give
  // the same numbers within 10%.
  const int layers = 96;
  const LayerFootprint fp = ComputeLayerFootprint(1, 2048, 12288, 49152);
  const double params_gb = double(fp.params_bytes) * layers / 1e9;
  const double acts_gb = double(fp.acts_bytes) * layers / 1e9;
  const double optims_gb = double(fp.optim_bytes) * layers / 1e9;
  EXPECT_NEAR(params_gb, 648.0, 648.0 * 0.10);
  EXPECT_NEAR(acts_gb, 162.0, 162.0 * 0.12);
  EXPECT_NEAR(optims_gb, 1944.0, 1944.0 * 0.10);
}

TEST(FootprintTest, Table2TensorSizeClasses) {
  // The model-state size classes of Table 2 for one GPT3 layer with
  // d=12288, dffn=49152.
  const auto tensors = EnumerateStateTensors(12288, 49152);
  std::map<uint64_t, int> histogram;  // bytes -> count
  for (const auto& t : tensors) histogram[t.bytes] += t.count;

  EXPECT_EQ(histogram[2304 * kMiB], 6);  // fp32 states of 2 FFN linears.
  EXPECT_EQ(histogram[1152 * kMiB], 4);  // fp16 param+grad of 2 FFN linears.
  EXPECT_EQ(histogram[576 * kMiB], 12);  // fp32 states of 4 attn linears.
  EXPECT_EQ(histogram[288 * kMiB], 8);   // fp16 param+grad of 4 attn linears.
  EXPECT_EQ(histogram[48 * util::kKiB], 6);  // fp32 LayerNorm states.
  EXPECT_EQ(histogram[24 * util::kKiB], 4);  // fp16 LayerNorm param+grad.
}

TEST(FootprintTest, Table2SizesSpanThreeOrdersOfMagnitude) {
  // The spread motivating page-based management (§3.2).
  const auto tensors = EnumerateStateTensors(12288, 49152);
  ASSERT_FALSE(tensors.empty());
  EXPECT_GE(tensors.front().bytes / tensors.back().bytes, 10000u);
  // Sorted descending.
  for (size_t i = 1; i < tensors.size(); ++i) {
    EXPECT_LE(tensors[i].bytes, tensors[i - 1].bytes);
  }
}

TEST(ModelZooTest, ContainsAllElevenTable4Models) {
  const auto zoo = PaperModelZoo();
  EXPECT_EQ(zoo.size(), 11u);
  EXPECT_TRUE(FindModel("GPT3-175B").ok());
  EXPECT_TRUE(FindModel("T5-MoE-1.2T").ok());
  EXPECT_TRUE(FindModel("NoSuchModel").status().IsNotFound());
}

TEST(ModelZooTest, GptParamCountsMatchModelNames) {
  struct Expectation {
    const char* name;
    double low_billion;
    double high_billion;
  };
  // GPT3-28B and GPT3-30B configs are internally inconsistent in the paper's
  // Table 4 (see EXPERIMENTS.md); the configs win, hence the wider bands.
  const Expectation expectations[] = {
      {"GPT3-1.7B", 1.5, 1.9},   {"GPT3-13B", 12.0, 14.0},
      {"GPT3-28B", 20.0, 29.0},  {"GPT3-55B", 52.0, 58.0},
      {"GPT3-120B", 110.0, 125.0}, {"GPT3-175B", 165.0, 185.0},
  };
  for (const auto& e : expectations) {
    auto config = FindModel(e.name);
    ASSERT_TRUE(config.ok()) << e.name;
    const double billions = double(TotalParamCount(*config)) / 1e9;
    EXPECT_GE(billions, e.low_billion) << e.name;
    EXPECT_LE(billions, e.high_billion) << e.name;
  }
}

TEST(ModelZooTest, T5MoeReachesTrillionScale) {
  auto config = FindModel("T5-MoE-1.2T");
  ASSERT_TRUE(config.ok());
  const double trillions = double(TotalParamCount(*config)) / 1e12;
  EXPECT_GE(trillions, 1.1);
  EXPECT_LE(trillions, 1.35);
}

TEST(ModelZooTest, ModelStateBytesAre16BytesPerParam) {
  auto config = FindModel("GPT3-13B");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(TotalModelStateBytes(*config), TotalParamCount(*config) * 16);
}

TEST(ModelZooTest, MakeConfigHelpers) {
  const auto gpt = MakeGptConfig(12, 16, 2048, 8192);
  EXPECT_EQ(gpt.family, ModelFamily::kGpt);
  EXPECT_EQ(gpt.num_layers, 12);
  const auto t5 = MakeT5Config(8, 16, 1024, 4096);
  EXPECT_EQ(t5.family, ModelFamily::kT5);
  const auto moe = MakeT5MoeConfig(16, 64, 1024, 16384);
  EXPECT_EQ(moe.family, ModelFamily::kT5Moe);
  EXPECT_TRUE(moe.IsMoe());
  EXPECT_FALSE(gpt.IsMoe());
}

TEST(ModelZooTest, T5HasDecoderOverheadOverGpt) {
  // Same dims and layer count: the T5 pair (enc+dec) must cost more than one
  // GPT layer but less than 3x.
  const auto gpt = MakeGptConfig(10, 16, 1024, 4096);
  const auto t5 = MakeT5Config(10, 16, 1024, 4096);
  EXPECT_GT(TotalParamCount(t5), TotalParamCount(gpt));
  EXPECT_LT(TotalParamCount(t5), 3 * TotalParamCount(gpt));
}

TEST(ActivationTest, RecomputeShrinksResidentActivations) {
  auto config = FindModel("GPT3-13B");
  ASSERT_TRUE(config.ok());
  const uint64_t full = TotalActivationBytes(*config, /*micro_batch=*/4);
  const uint64_t resident = ResidentActivationBytes(*config, 4);
  EXPECT_LT(resident, full / 5);  // Recompute must save a lot.
  EXPECT_GT(resident, 0u);
}

TEST(ActivationTest, ActivationsScaleLinearlyWithBatch) {
  auto config = FindModel("GPT3-1.7B");
  ASSERT_TRUE(config.ok());
  const uint64_t b1 = TotalActivationBytes(*config, 1);
  const uint64_t b4 = TotalActivationBytes(*config, 4);
  EXPECT_EQ(b4, 4 * b1);
}

}  // namespace
}  // namespace angelptm::model
