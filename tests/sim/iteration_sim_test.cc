#include "sim/iteration_sim.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace angelptm::sim {
namespace {

using core::SchedStep;
using core::Task;
using core::TaskOp;

/// Two compute steps of 1s each, one 32 MiB page per step.
IterationSpec TwoStepSpec() {
  IterationSpec spec;
  spec.sched.world_size = 4;
  spec.sched.gpu_memory_budget = 1ull << 40;
  for (int i = 0; i < 2; ++i) {
    SchedStep step;
    step.param_pages = {{uint64_t(i), 32ull << 20}};
    step.compute_seconds = 1.0;
    spec.sched.steps.push_back(step);
  }
  spec.pcie_bw = 32e9;
  spec.collective_bw_per_rank = 200e9;
  return spec;
}

TEST(IterationSimTest, ComputeOnlySumsStepTimes) {
  IterationSpec spec = TwoStepSpec();
  spec.tasks = {
      {TaskOp::kMoveToGpu, 0, 0, 0, 0},  // Zero-byte: residency marker.
      {TaskOp::kMoveToGpu, 1, 0, 1, 0},
      {TaskOp::kCompute, ~0ull, 0, 0, 0},
      {TaskOp::kCompute, ~0ull, 0, 1, 1},
  };
  const IterationResult result = SimulateIteration(spec);
  EXPECT_NEAR(result.iteration_seconds, 2.0, 1e-9);
  EXPECT_NEAR(result.gpu_busy, 2.0, 1e-9);
  EXPECT_NEAR(result.GpuIdleFraction(), 0.0, 1e-9);
}

TEST(IterationSimTest, PrefetchedMovesOverlapCompute) {
  // Both moves issued at t=0: the second move (for step 1) overlaps the
  // first compute, so only the first transfer is on the critical path.
  IterationSpec spec = TwoStepSpec();
  spec.collective_bw_per_rank = 1e18;  // Make gather wire time negligible.
  spec.tasks = {
      {TaskOp::kMoveToGpu, 0, 32ull << 20, 0, 0},
      {TaskOp::kMoveToGpu, 1, 32ull << 20, 1, 0},
      {TaskOp::kAllGather, 0, 32ull << 20, 0, 0},
      {TaskOp::kAllGather, 1, 32ull << 20, 1, 0},
      {TaskOp::kCompute, ~0ull, 0, 0, 0},
      {TaskOp::kCompute, ~0ull, 0, 1, 1},
  };
  const IterationResult result = SimulateIteration(spec);
  const double move_seconds = double(32ull << 20) / 32e9;  // ~1 ms.
  // Compute 0 waits for its own move; the second move rides under compute.
  EXPECT_NEAR(result.iteration_seconds, 2.0 + move_seconds, 1e-4);
}

TEST(IterationSimTest, SerializedMovesStallCompute) {
  // Move for step 1 triggered only after compute 0: its latency is exposed.
  IterationSpec spec = TwoStepSpec();
  spec.pcie_bw = 32e6;  // Slow link: ~1s per 32 MiB page.
  spec.collective_bw_per_rank = 1e18;
  spec.tasks = {
      {TaskOp::kMoveToGpu, 0, 32ull << 20, 0, 0},
      {TaskOp::kAllGather, 0, 32ull << 20, 0, 0},
      {TaskOp::kCompute, ~0ull, 0, 0, 0},
      {TaskOp::kMoveToGpu, 1, 32ull << 20, 1, 1},
      {TaskOp::kAllGather, 1, 32ull << 20, 1, 1},
      {TaskOp::kCompute, ~0ull, 0, 1, 1},
  };
  const IterationResult serialized = SimulateIteration(spec);
  // vs both moves prefetched at t=0.
  spec.tasks[3].trigger_id = 0;
  const IterationResult overlapped = SimulateIteration(spec);
  EXPECT_GT(serialized.iteration_seconds,
            overlapped.iteration_seconds + 0.5);
}

TEST(IterationSimTest, OnDemandGatherPaysPcie) {
  IterationSpec spec = TwoStepSpec();
  spec.pcie_bw = 32e6;
  // No moves at all: gathers must fetch shards over PCIe on demand.
  spec.tasks = {
      {TaskOp::kAllGather, 0, 32ull << 20, 0, 0},
      {TaskOp::kCompute, ~0ull, 0, 0, 0},
      {TaskOp::kAllGather, 1, 32ull << 20, 1, 1},
      {TaskOp::kCompute, ~0ull, 0, 1, 1},
  };
  const IterationResult result = SimulateIteration(spec);
  EXPECT_GT(result.pcie_busy, 1.5);  // Two ~1s on-demand fetches.
  EXPECT_GT(result.iteration_seconds, 3.5);
}

TEST(IterationSimTest, SynchronousOptimizerExtendsIteration) {
  IterationSpec spec = TwoStepSpec();
  spec.tasks = {
      {TaskOp::kMoveToGpu, 0, 0, 0, 0},
      {TaskOp::kMoveToGpu, 1, 0, 1, 0},
      {TaskOp::kCompute, ~0ull, 0, 0, 0},
      {TaskOp::kCompute, ~0ull, 0, 1, 1},
  };
  OptimizerWork work;
  work.after_step = 1;
  work.cpu_update_elements = uint64_t(spec.cpu_optimizer_bw / 28.0);  // ~1s.
  spec.opt_work = {work};
  const IterationResult sync = SimulateIteration(spec);
  EXPECT_NEAR(sync.iteration_seconds, 3.0, 0.01);

  // Lock-free: the CPU tail leaves the critical path and becomes lag.
  spec.lock_free = true;
  const IterationResult lock_free = SimulateIteration(spec);
  EXPECT_NEAR(lock_free.iteration_seconds, 2.0, 0.01);
  EXPECT_NEAR(lock_free.optimizer_lag_seconds, 1.0, 0.01);
}

TEST(IterationSimTest, PerLayerOptimizerOverlapsBackward) {
  // Optimizer work for step 0 can start right after compute 0 while
  // compute 1 still runs: only the tail beyond compute is exposed.
  IterationSpec spec = TwoStepSpec();
  spec.tasks = {
      {TaskOp::kMoveToGpu, 0, 0, 0, 0},
      {TaskOp::kMoveToGpu, 1, 0, 1, 0},
      {TaskOp::kCompute, ~0ull, 0, 0, 0},
      {TaskOp::kCompute, ~0ull, 0, 1, 1},
  };
  const uint64_t one_second = uint64_t(spec.cpu_optimizer_bw / 28.0);
  OptimizerWork early;
  early.after_step = 0;
  early.cpu_update_elements = one_second;
  OptimizerWork late;
  late.after_step = 1;
  late.cpu_update_elements = one_second;
  spec.opt_work = {early, late};
  const IterationResult result = SimulateIteration(spec);
  // early overlaps compute 1 entirely: total = 2 (compute) + 1 (late).
  EXPECT_NEAR(result.iteration_seconds, 3.0, 0.01);
  EXPECT_NEAR(result.cpu_busy, 2.0, 0.01);
}

TEST(IterationSimTest, SsdChainsReadUpdateWrite) {
  IterationSpec spec = TwoStepSpec();
  spec.tasks = {
      {TaskOp::kCompute, ~0ull, 0, 0, 0},
      {TaskOp::kCompute, ~0ull, 0, 1, 1},
  };
  OptimizerWork work;
  work.after_step = 1;
  work.ssd_read_bytes = uint64_t(spec.ssd_bw);   // 1s.
  work.ssd_write_bytes = uint64_t(spec.ssd_bw);  // 1s.
  work.cpu_update_elements = uint64_t(spec.cpu_optimizer_bw / 28.0);
  spec.opt_work = {work};
  const IterationResult result = SimulateIteration(spec);
  // compute 2s, then read 1s -> update 1s -> write 1s.
  EXPECT_NEAR(result.iteration_seconds, 5.0, 0.01);
  EXPECT_NEAR(result.ssd_busy, 2.0, 0.01);
}

TEST(IterationSimTest, GradAccumulationAmortizesOptimizer) {
  IterationSpec spec = TwoStepSpec();
  spec.tasks = {
      {TaskOp::kMoveToGpu, 0, 0, 0, 0},
      {TaskOp::kMoveToGpu, 1, 0, 1, 0},
      {TaskOp::kCompute, ~0ull, 0, 0, 0},
      {TaskOp::kCompute, ~0ull, 0, 1, 1},
  };
  OptimizerWork work;
  work.after_step = 1;
  work.cpu_update_elements = uint64_t(spec.cpu_optimizer_bw / 28.0);  // 1s.
  spec.opt_work = {work};

  spec.grad_accumulation = 1;
  const IterationResult once = SimulateIteration(spec);
  spec.grad_accumulation = 4;
  const IterationResult accumulated = SimulateIteration(spec);
  // 4 passes of 2s compute + ONE optimizer second.
  EXPECT_NEAR(accumulated.iteration_seconds, 9.0, 0.05);
  // Per-sample time improves: 9/4 < 3/1.
  EXPECT_LT(accumulated.iteration_seconds / 4, once.iteration_seconds);
}

TEST(IterationSimTest, ExtraCommDelaysComputeSteps) {
  IterationSpec spec = TwoStepSpec();
  spec.tasks = {
      {TaskOp::kMoveToGpu, 0, 0, 0, 0},
      {TaskOp::kMoveToGpu, 1, 0, 1, 0},
      {TaskOp::kCompute, ~0ull, 0, 0, 0},
      {TaskOp::kCompute, ~0ull, 0, 1, 1},
  };
  spec.extra_comm_seconds_per_step = 0.5;  // The MoE all-to-all.
  const IterationResult result = SimulateIteration(spec);
  EXPECT_NEAR(result.iteration_seconds, 3.0, 0.01);
  EXPECT_NEAR(result.comm_busy, 1.0, 0.01);
}

TEST(IterationSimTest, TimelineIsConsistent) {
  IterationSpec spec = TwoStepSpec();
  spec.tasks = {
      {TaskOp::kMoveToGpu, 0, 32ull << 20, 0, 0},
      {TaskOp::kMoveToGpu, 1, 32ull << 20, 1, 0},
      {TaskOp::kAllGather, 0, 32ull << 20, 0, 0},
      {TaskOp::kAllGather, 1, 32ull << 20, 1, 1},
      {TaskOp::kCompute, ~0ull, 0, 0, 0},
      {TaskOp::kCompute, ~0ull, 0, 1, 1},
  };
  OptimizerWork work;
  work.after_step = 1;
  work.cpu_update_elements = uint64_t(spec.cpu_optimizer_bw / 28.0);
  spec.opt_work = {work};
  std::vector<TaskTiming> timeline;
  const IterationResult result = SimulateIteration(spec, &timeline);
  ASSERT_FALSE(timeline.empty());
  // Sorted by start; per-resource tasks never overlap; everything finishes
  // within the iteration.
  std::map<std::string, double> last_end;
  double previous_start = -1;
  for (const TaskTiming& task : timeline) {
    EXPECT_GE(task.start, previous_start);
    previous_start = task.start;
    EXPECT_GT(task.end, task.start);
    EXPECT_LE(task.end, result.iteration_seconds + 1e-9) << task.name;
    EXPECT_GE(task.start, last_end[task.resource] - 1e-12)
        << task.name << " overlaps on " << task.resource;
    last_end[task.resource] = task.end;
  }
  // Expected task mix.
  int computes = 0, moves = 0;
  for (const TaskTiming& task : timeline) {
    if (task.resource == "gpu") ++computes;
    if (task.resource == "pcie") ++moves;
  }
  EXPECT_EQ(computes, 2);
  EXPECT_EQ(moves, 2);
}

TEST(IterationSimTest, ChromeTraceExportWritesJson) {
  IterationSpec spec = TwoStepSpec();
  spec.tasks = {
      {TaskOp::kMoveToGpu, 0, 32ull << 20, 0, 0},
      {TaskOp::kAllGather, 0, 32ull << 20, 0, 0},
      {TaskOp::kCompute, ~0ull, 0, 0, 0},
      {TaskOp::kAllGather, 1, 32ull << 20, 1, 1},
      {TaskOp::kCompute, ~0ull, 0, 1, 1},
  };
  std::vector<TaskTiming> timeline;
  SimulateIteration(spec, &timeline);
  const std::string path =
      "/tmp/angelptm_trace_test_" + std::to_string(::getpid()) + ".json";
  ASSERT_TRUE(ExportChromeTrace(timeline, path).ok());
  std::ifstream file(path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::string json = buffer.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("compute step 0"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  // Balanced braces (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  std::remove(path.c_str());
}

TEST(IterationSimTest, BusyCountersConsistent) {
  IterationSpec spec = TwoStepSpec();
  spec.tasks = {
      {TaskOp::kMoveToGpu, 0, 32ull << 20, 0, 0},
      {TaskOp::kMoveToGpu, 1, 32ull << 20, 1, 0},
      {TaskOp::kAllGather, 0, 32ull << 20, 0, 0},
      {TaskOp::kAllGather, 1, 32ull << 20, 1, 1},
      {TaskOp::kCompute, ~0ull, 0, 0, 0},
      {TaskOp::kCompute, ~0ull, 0, 1, 1},
  };
  const IterationResult result = SimulateIteration(spec);
  EXPECT_NEAR(result.gpu_busy, 2.0, 1e-6);
  EXPECT_GT(result.pcie_busy, 0.0);
  EXPECT_GT(result.comm_busy, 0.0);
  EXPECT_LE(result.gpu_busy, result.iteration_seconds + 1e-9);
}

}  // namespace
}  // namespace angelptm::sim
