#include "sim/cost_model.h"

#include <gtest/gtest.h>

#include "model/model_zoo.h"

namespace angelptm::sim {
namespace {

CostModel MakeCostModel(const model::TransformerConfig& config) {
  model::TrainingConfig training;
  training.recompute_activations = true;
  return CostModel(PaperServer(), config, training);
}

TEST(CostModelTest, GptForwardFlopsDominatedByMatmuls) {
  const auto config = model::MakeGptConfig(1, 16, 2048, 8192);
  const CostModel cost = MakeCostModel(config);
  // 2 FLOPs per param per token plus attention term.
  const double tokens = 1.0 * config.seq_len;
  const double expected_matmul =
      2.0 * (4.0 * 2048 * 2048 + 2.0 * 2048 * 8192) * tokens;
  EXPECT_GT(cost.LayerForwardFlops(1), expected_matmul);
  EXPECT_LT(cost.LayerForwardFlops(1), expected_matmul * 1.5);
}

TEST(CostModelTest, BackwardIsThreeTimesForwardWithRecompute) {
  const auto config = model::MakeGptConfig(1, 16, 1024, 4096);
  const CostModel cost = MakeCostModel(config);
  EXPECT_DOUBLE_EQ(cost.LayerBackwardFlops(4),
                   3.0 * cost.LayerForwardFlops(4));
}

TEST(CostModelTest, FlopsScaleLinearlyWithBatch) {
  const auto config = model::MakeGptConfig(1, 16, 1024, 4096);
  const CostModel cost = MakeCostModel(config);
  EXPECT_DOUBLE_EQ(cost.LayerForwardFlops(8),
                   8.0 * cost.LayerForwardFlops(1));
}

TEST(CostModelTest, EfficiencySaturatesWithTokens) {
  const auto config = model::MakeGptConfig(1, 16, 1024, 4096);
  const CostModel cost = MakeCostModel(config);
  const double eff1 = cost.AchievedFlops(1);
  const double eff8 = cost.AchievedFlops(8);
  const double eff64 = cost.AchievedFlops(64);
  EXPECT_LT(eff1, eff8);
  EXPECT_LT(eff8, eff64);
  const HardwareConfig hw = PaperServer();
  EXPECT_LT(eff64, hw.GpuEffectiveFlops());
  // Seconds per sample improve with batch (larger batch = better util).
  EXPECT_LT(cost.LayerForwardSeconds(64) / 64,
            cost.LayerForwardSeconds(1) / 1);
}

TEST(CostModelTest, AllGatherScalesWithWorldAndBytes) {
  const auto config = model::MakeGptConfig(1, 16, 1024, 4096);
  const CostModel cost = MakeCostModel(config);
  EXPECT_DOUBLE_EQ(cost.AllGatherSeconds(1 << 20, 1), 0.0);
  const double t2 = cost.AllGatherSeconds(1 << 20, 2);
  const double t8 = cost.AllGatherSeconds(1 << 20, 8);
  EXPECT_GT(t8, t2);  // (N-1) shards per rank.
  EXPECT_DOUBLE_EQ(cost.AllGatherSeconds(2 << 20, 8), 2.0 * t8);
  EXPECT_DOUBLE_EQ(cost.ReduceScatterSeconds(1 << 20, 8), t8);
}

TEST(CostModelTest, CrossNodeCollectivesAreSlower) {
  const auto config = model::MakeGptConfig(1, 16, 1024, 4096);
  const CostModel cost = MakeCostModel(config);
  // Intra-node rides NVLink; 16 ranks span nodes and ride the NIC share.
  const double intra = cost.AllGatherSeconds(1 << 20, 8);
  const double inter = cost.AllGatherSeconds(1 << 20, 16);
  EXPECT_GT(inter, 4.0 * intra);
}

TEST(CostModelTest, AllToAllLatencyGrowsWithWorld) {
  const auto config = model::MakeT5MoeConfig(16, 64, 1024, 16384);
  const CostModel cost = MakeCostModel(config);
  const double t64 = cost.AllToAllSeconds(1 << 20, 64);
  const double t1024 = cost.AllToAllSeconds(1 << 20, 1024);
  EXPECT_GT(t1024, t64);  // Per-peer latency term dominates at scale.
}

TEST(CostModelTest, OptimizerAndSsdCosts) {
  const auto config = model::MakeGptConfig(1, 16, 1024, 4096);
  const CostModel cost = MakeCostModel(config);
  const HardwareConfig hw = PaperServer();
  const uint64_t elements = 1'000'000'000ull;
  EXPECT_DOUBLE_EQ(cost.CpuAdamSeconds(elements),
                   elements * 28.0 / hw.cpu_optimizer_bw_per_node);
  EXPECT_DOUBLE_EQ(cost.SsdRoundTripSeconds(elements),
                   elements * 24.0 / hw.ssd_bw_per_node);
  // GPU HBM update is far faster than CPU.
  EXPECT_LT(cost.GpuAdamSeconds(elements), cost.CpuAdamSeconds(elements));
}

TEST(CostModelTest, MoeComputeUsesActiveExpertOnly) {
  // Compute cost must not scale with the number of (inactive) experts.
  const auto small = MakeCostModel(model::MakeT5MoeConfig(16, 8, 1024, 16384));
  const auto large =
      MakeCostModel(model::MakeT5MoeConfig(16, 2304, 1024, 16384));
  EXPECT_DOUBLE_EQ(small.LayerForwardFlops(8), large.LayerForwardFlops(8));
}

TEST(HardwareTest, PaperServerMatchesTable3) {
  const HardwareConfig hw = PaperServer();
  EXPECT_EQ(hw.gpus_per_node, 8);
  EXPECT_EQ(hw.gpu_memory_bytes, 40ull * 1024 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(hw.pcie_bw_per_gpu, 32e9);
  EXPECT_DOUBLE_EQ(hw.ssd_bw_per_node, 3.5e9);
  EXPECT_DOUBLE_EQ(hw.nvlink_bw_per_gpu, 200e9);
  const std::string description = DescribeHardware(hw);
  EXPECT_NE(description.find("A100"), std::string::npos);
}

TEST(HardwareTest, CollectiveBandwidthDropsAcrossNodes) {
  const HardwareConfig hw = PaperServer();
  EXPECT_DOUBLE_EQ(hw.CollectiveBwPerRank(8), hw.nvlink_bw_per_gpu);
  EXPECT_DOUBLE_EQ(hw.CollectiveBwPerRank(64),
                   hw.nic_bw_per_node / hw.gpus_per_node);
}

}  // namespace
}  // namespace angelptm::sim
