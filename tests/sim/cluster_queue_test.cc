#include "sim/cluster_queue.h"

#include <gtest/gtest.h>

namespace angelptm::sim {
namespace {

ClusterQueueConfig BaseConfig() {
  ClusterQueueConfig config;
  config.total_gpus = 512;
  config.arrivals_per_hour = 10.0;
  config.gpus_per_finetune_job = 32;
  config.gpus_per_pretrain_job = 256;
  config.num_jobs = 400;
  config.seed = 17;
  return config;
}

TEST(ClusterQueueTest, AllJobsComplete) {
  const ClusterQueueResult result = SimulateClusterQueue(BaseConfig());
  EXPECT_EQ(result.jobs_completed, 400);
  EXPECT_GE(result.mean_wait_hours, 0.0);
  EXPECT_GE(result.p95_wait_hours, result.mean_wait_hours);
  EXPECT_GE(result.max_wait_hours, result.p95_wait_hours);
  EXPECT_GT(result.gpu_utilization, 0.0);
  EXPECT_LE(result.gpu_utilization, 1.0);
}

TEST(ClusterQueueTest, SmallerJobsShrinkWaits) {
  // The paper's §3.2 argument: hierarchical memory shrinks GPUs per
  // fine-tuning job, so the same cluster clears the queue much faster.
  ClusterQueueConfig heavy = BaseConfig();
  heavy.gpus_per_finetune_job = 64;
  ClusterQueueConfig light = BaseConfig();
  light.gpus_per_finetune_job = 8;
  const ClusterQueueResult heavy_result = SimulateClusterQueue(heavy);
  const ClusterQueueResult light_result = SimulateClusterQueue(light);
  EXPECT_LT(light_result.mean_finetune_wait_hours,
            heavy_result.mean_finetune_wait_hours);
  EXPECT_LT(light_result.p95_wait_hours, heavy_result.p95_wait_hours);
}

TEST(ClusterQueueTest, UnderloadedClusterHasNoWaits) {
  ClusterQueueConfig config = BaseConfig();
  config.arrivals_per_hour = 0.1;  // One job every 10 hours.
  config.finetune_fraction = 1.0;
  config.gpus_per_finetune_job = 8;
  const ClusterQueueResult result = SimulateClusterQueue(config);
  EXPECT_NEAR(result.mean_wait_hours, 0.0, 1e-9);
}

TEST(ClusterQueueTest, OverloadedClusterBacksUp) {
  ClusterQueueConfig config = BaseConfig();
  config.arrivals_per_hour = 100.0;  // Far beyond capacity.
  const ClusterQueueResult result = SimulateClusterQueue(config);
  EXPECT_GT(result.mean_wait_hours, 1.0);
  EXPECT_GT(result.gpu_utilization, 0.5);
}

TEST(ClusterQueueTest, DeterministicForSeed) {
  const ClusterQueueResult a = SimulateClusterQueue(BaseConfig());
  const ClusterQueueResult b = SimulateClusterQueue(BaseConfig());
  EXPECT_EQ(a.mean_wait_hours, b.mean_wait_hours);
  EXPECT_EQ(a.max_wait_hours, b.max_wait_hours);
}

TEST(ClusterQueueTest, DifferentSeedsDiffer) {
  ClusterQueueConfig other = BaseConfig();
  other.seed = 18;
  const ClusterQueueResult a = SimulateClusterQueue(BaseConfig());
  const ClusterQueueResult b = SimulateClusterQueue(other);
  EXPECT_NE(a.mean_wait_hours, b.mean_wait_hours);
}

}  // namespace
}  // namespace angelptm::sim
