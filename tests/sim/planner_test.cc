#include "sim/planner.h"

#include <gtest/gtest.h>

#include "baselines/deepspeed_like.h"
#include "baselines/megatron_like.h"
#include "dist/expert_parallel.h"
#include "model/footprint.h"
#include "model/model_zoo.h"

namespace angelptm::sim {
namespace {

PlanRequest BaseRequest(const char* model_name, int gpus = 8) {
  PlanRequest request;
  request.model = *model::FindModel(model_name);
  request.model.seq_len = 1024;
  request.hw = PaperServer();
  request.num_gpus = gpus;
  request.micro_batch = 1;
  return request;
}

TEST(AngelPlannerTest, SmallModelPlansAndSimulates) {
  PlanRequest request = BaseRequest("GPT3-1.7B");
  auto plan = PlanAngelPtm(request);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_LE(plan->peak_gpu_bytes, request.hw.gpu_memory_bytes);
  EXPECT_FALSE(plan->spec.tasks.empty());
  EXPECT_EQ(plan->spec.sched.steps.size(),
            size_t(2 * request.model.num_layers));
  const double throughput = SamplesPerSecond(request, *plan);
  EXPECT_GT(throughput, 0.0);
}

TEST(AngelPlannerTest, MaxBatchPositiveAndMonotoneChecks) {
  PlanRequest request = BaseRequest("GPT3-13B");
  const int max_batch = MaxMicroBatchAngelPtm(request, 256);
  EXPECT_GT(max_batch, 1);
  request.micro_batch = max_batch;
  EXPECT_TRUE(PlanAngelPtm(request).ok());
  request.micro_batch = max_batch + 1;
  EXPECT_FALSE(PlanAngelPtm(request).ok());
}

TEST(AngelPlannerTest, Table5CapacityShapeOnSingleServer) {
  // DeepSpeed's static partitioning caps out near 28B (pinned fp32 states);
  // Angel-PTM roughly doubles it by spilling into spare GPU memory —
  // the paper's 96.4% / 114.8% improvements.
  auto max_layers = [&](bool angel) {
    int best = 0;
    for (int layers = 8; layers <= 160; layers += 2) {
      PlanRequest request;
      request.model = model::MakeGptConfig(layers, 128, 8192, 32768);
      request.model.seq_len = 1024;
      request.hw = PaperServer();
      request.num_gpus = 8;
      request.micro_batch = 1;
      const bool ok = angel ? PlanAngelPtm(request).ok()
                            : baselines::PlanDeepSpeedLike(request).ok();
      if (ok) {
        best = layers;
      } else {
        break;
      }
    }
    return best;
  };
  const int deepspeed_layers = max_layers(false);
  const int angel_layers = max_layers(true);
  const double ds_params = double(model::TotalParamCount(
      model::MakeGptConfig(deepspeed_layers, 128, 8192, 32768)));
  const double angel_params = double(model::TotalParamCount(
      model::MakeGptConfig(angel_layers, 128, 8192, 32768)));
  EXPECT_NEAR(ds_params / 1e9, 28.0, 4.0);      // Paper: 28B.
  EXPECT_NEAR(angel_params / 1e9, 55.0, 8.0);   // Paper: 55B.
  EXPECT_GT(angel_params / ds_params, 1.7);     // Paper: +96.4%.
  EXPECT_LT(angel_params / ds_params, 2.5);
}

TEST(AngelPlannerTest, AngelBeatsDeepSpeedOnThroughput) {
  for (const char* name : {"GPT3-13B", "GPT3-28B"}) {
    PlanRequest request = BaseRequest(name);
    const int angel_batch = MaxMicroBatchAngelPtm(request, 256);
    const int ds_batch = baselines::MaxMicroBatchDeepSpeedLike(request, 256);
    ASSERT_GT(angel_batch, 0) << name;
    ASSERT_GT(ds_batch, 0) << name;
    EXPECT_GE(angel_batch, ds_batch) << name;

    request.micro_batch = angel_batch;
    auto angel_plan = PlanAngelPtm(request);
    ASSERT_TRUE(angel_plan.ok());
    const double angel = SamplesPerSecond(request, *angel_plan);
    request.micro_batch = ds_batch;
    auto ds_plan = baselines::PlanDeepSpeedLike(request);
    ASSERT_TRUE(ds_plan.ok());
    const double ds = SamplesPerSecond(request, *ds_plan);
    EXPECT_GT(angel, ds) << name;
  }
}

TEST(AngelPlannerTest, DynamicGpuCacheEngagesWhenSpare) {
  // A mid-size model leaves GPU slack; some fp32 states should be cached.
  PlanRequest request = BaseRequest("GPT3-13B");
  request.micro_batch = 4;
  auto plan = PlanAngelPtm(request);
  ASSERT_TRUE(plan.ok());
  EXPECT_GT(plan->gpu_cache_bytes, 0u);
  EXPECT_GT(plan->gpu_cached_fraction, 0.0);
  EXPECT_LE(plan->gpu_cached_fraction, 1.0);
}

TEST(AngelPlannerTest, SsdModeShiftsStatesToSsd) {
  PlanRequest request = BaseRequest("GPT3-28B");
  request.use_ssd = true;
  auto plan = PlanAngelPtm(request);
  ASSERT_TRUE(plan.ok());
  EXPECT_GT(plan->ssd_bytes_per_node, 0u);
  bool has_ssd_work = false;
  for (const auto& work : plan->spec.opt_work) {
    if (work.ssd_read_bytes > 0) has_ssd_work = true;
  }
  EXPECT_TRUE(has_ssd_work);
}

TEST(AngelPlannerTest, LockFreeBeatsSynchronousWithSsd) {
  PlanRequest request = BaseRequest("GPT3-28B");
  request.use_ssd = true;
  auto sync_plan = PlanAngelPtm(request);
  ASSERT_TRUE(sync_plan.ok());
  const double sync = SamplesPerSecond(request, *sync_plan);
  request.lock_free = true;
  auto lf_plan = PlanAngelPtm(request);
  ASSERT_TRUE(lf_plan.ok());
  const double lock_free = SamplesPerSecond(request, *lf_plan);
  EXPECT_GT(lock_free, 1.5 * sync);
}

TEST(DeepSpeedLikeTest, PinnedBudgetCapsModelScale) {
  // 55B needs 660 GB of pinned fp32 states > the 340 GB pinned budget.
  PlanRequest request;
  request.model = model::MakeGptConfig(68, 128, 8192, 32768);
  request.model.seq_len = 1024;
  request.hw = PaperServer();
  request.num_gpus = 8;
  request.micro_batch = 1;
  auto plan = baselines::PlanDeepSpeedLike(request);
  ASSERT_FALSE(plan.ok());
  EXPECT_TRUE(plan.status().IsOutOfMemory());
}

TEST(DeepSpeedLikeTest, NoGpuCacheEver) {
  PlanRequest request = BaseRequest("GPT3-13B");
  auto plan = baselines::PlanDeepSpeedLike(request);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->gpu_cache_bytes, 0u);
  EXPECT_EQ(plan->gpu_cached_fraction, 0.0);
}

TEST(MegatronLikeTest, SmallModelPicksPlainDataParallel) {
  const auto config = model::FindModel("GPT3-1.7B");
  auto plan = baselines::PlanMegatronLike(*config, PaperServer(), 8);
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.tensor_parallel * plan.pipeline_parallel *
                plan.data_parallel,
            8);
  EXPECT_GT(plan.samples_per_second, 0.0);
}

TEST(MegatronLikeTest, ThirtyBOomsOnEightGpus) {
  // The Figure 7 behaviour: no offload -> 16 B/param does not fit 8 GPUs.
  const auto config = model::FindModel("GPT3-30B");
  auto plan = baselines::PlanMegatronLike(*config, PaperServer(), 8);
  EXPECT_FALSE(plan.feasible);
  EXPECT_FALSE(plan.infeasible_reason.empty());
  // With 32 GPUs it fits.
  auto bigger = baselines::PlanMegatronLike(*config, PaperServer(), 32);
  EXPECT_TRUE(bigger.feasible);
}

TEST(ExpertParallelTest, PlansAndScalesNearLinearly) {
  dist::ExpertParallelRequest request;
  request.model = *model::FindModel("T5-MoE-1.2T");
  request.hw = PaperServer();
  request.micro_batch = 8;
  double per_gpu_64 = 0, per_gpu_1024 = 0;
  for (const int gpus : {64, 1024}) {
    request.num_gpus = gpus;
    auto plan = dist::PlanExpertParallel(request);
    ASSERT_TRUE(plan.ok()) << plan.status();
    const IterationResult result = SimulateIteration(plan->spec);
    const double per_gpu =
        double(request.micro_batch) / result.iteration_seconds;
    (gpus == 64 ? per_gpu_64 : per_gpu_1024) = per_gpu;
  }
  // Near-linear weak scaling with mild all-to-all dampening (Figure 9).
  EXPECT_LT(per_gpu_1024, per_gpu_64);
  EXPECT_GT(per_gpu_1024, 0.75 * per_gpu_64);
}

TEST(ExpertParallelTest, ModelGrowsWithCluster) {
  dist::ExpertParallelRequest request;
  request.model = *model::FindModel("T5-MoE-1.2T");
  request.hw = PaperServer();
  request.num_gpus = 256;
  // 9 experts/GPU on 256 GPUs = the paper's 2304-expert 1.2T model.
  EXPECT_NEAR(double(dist::ExpertParallelModelParams(request)) / 1e12, 1.24,
              0.1);
}

TEST(ExpertParallelTest, LockFreeRemovesSsdBottleneck) {
  dist::ExpertParallelRequest request;
  request.model = *model::FindModel("T5-MoE-1.2T");
  request.hw = PaperServer();
  request.num_gpus = 64;
  request.experts_per_gpu = 29;
  request.micro_batch = 16;
  request.use_ssd = true;
  request.ssd_state_fraction = 0.05;
  auto sync_plan = dist::PlanExpertParallel(request);
  ASSERT_TRUE(sync_plan.ok()) << sync_plan.status();
  const IterationResult sync = SimulateIteration(sync_plan->spec);
  request.lock_free = true;
  auto lf_plan = dist::PlanExpertParallel(request);
  ASSERT_TRUE(lf_plan.ok());
  const IterationResult lock_free = SimulateIteration(lf_plan->spec);
  EXPECT_GT(sync.iteration_seconds, 2.0 * lock_free.iteration_seconds);
  EXPECT_GT(lock_free.optimizer_lag_seconds, 0.0);
  EXPECT_GT(sync.GpuIdleFraction(), 0.5);  // The paper's ~80% idle claim.
}

TEST(ExpertParallelTest, RejectsNonMoeModels) {
  dist::ExpertParallelRequest request;
  request.model = *model::FindModel("GPT3-13B");
  request.hw = PaperServer();
  EXPECT_TRUE(
      dist::PlanExpertParallel(request).status().IsInvalidArgument());
}

TEST(PlannerValidationTest, BadRequestsRejected) {
  PlanRequest request = BaseRequest("GPT3-1.7B");
  request.num_gpus = 0;
  EXPECT_TRUE(PlanAngelPtm(request).status().IsInvalidArgument());
  EXPECT_TRUE(
      baselines::PlanDeepSpeedLike(request).status().IsInvalidArgument());
}

}  // namespace
}  // namespace angelptm::sim
