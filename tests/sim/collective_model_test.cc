#include "sim/collective_model.h"

#include <gtest/gtest.h>

namespace angelptm::sim {
namespace {

TEST(CollectiveModelTest, WorldOfOneIsFree) {
  CollectiveModel model(LocalhostLoopback());
  EXPECT_EQ(model.AllGatherSeconds(1, 1 << 20), 0.0);
  EXPECT_EQ(model.ReduceScatterSeconds(1, 1 << 20), 0.0);
  EXPECT_EQ(model.AllReduceSeconds(1, 1 << 20), 0.0);
  EXPECT_EQ(model.BarrierSeconds(1), 0.0);
  EXPECT_EQ(model.ZeroStepSeconds(1, 8, 1 << 20), 0.0);
}

TEST(CollectiveModelTest, BarrierIsPureLatency) {
  CollectiveFabric fabric;
  fabric.latency_per_message = 1e-4;
  fabric.bandwidth = 1e9;
  CollectiveModel model(fabric);
  // world=4: 3 peers x (up + down) = 6 messages of pure setup cost.
  EXPECT_DOUBLE_EQ(model.BarrierSeconds(4), 6 * 1e-4);
}

TEST(CollectiveModelTest, HubScalesLinearlyInWorldSize) {
  CollectiveModel model(LocalhostLoopback());
  const uint64_t bytes = 256 * 1024;
  double prev = 0.0;
  for (int world = 2; world <= 16; world *= 2) {
    const double t = model.AllReduceSeconds(world, bytes);
    EXPECT_GT(t, prev) << "world " << world;
    prev = t;
  }
  // The hub serializes: all-reduce at world 2w costs more than 2x the
  // world-w time (2w-1 vs w-1 peer exchanges, > 2x for any w > 1).
  EXPECT_GT(model.AllReduceSeconds(8, bytes),
            2 * model.AllReduceSeconds(4, bytes));
}

TEST(CollectiveModelTest, MonotoneInPayload) {
  CollectiveModel model(LocalhostLoopback());
  EXPECT_GT(model.AllGatherSeconds(4, 1 << 20),
            model.AllGatherSeconds(4, 1 << 10));
  EXPECT_GT(model.ReduceScatterSeconds(4, 1 << 20),
            model.ReduceScatterSeconds(4, 1 << 10));
}

TEST(CollectiveModelTest, AllGatherAndReduceScatterAreWireSymmetric) {
  // An all-gather of S-byte shards and a reduce-scatter of the W*S-byte
  // full buffer move exactly the same bytes over the hub, just in opposite
  // directions — the model must agree.
  CollectiveModel model(LocalhostLoopback());
  const int world = 4;
  const uint64_t shard = 64 * 1024;
  EXPECT_DOUBLE_EQ(model.AllGatherSeconds(world, shard),
                   model.ReduceScatterSeconds(world, world * shard));
}

TEST(CollectiveModelTest, ZeroStepSumsPerLayerCollectives) {
  CollectiveModel model(LocalhostLoopback());
  const int world = 4;
  const uint64_t layer_bytes = 300 * 1024;  // Not divisible by world.
  const uint64_t shard = (layer_bytes + world - 1) / world;
  const double expected =
      3 * (model.AllGatherSeconds(world, shard) +
           model.ReduceScatterSeconds(world, shard * world)) +
      model.AllReduceSeconds(world, sizeof(float));
  EXPECT_DOUBLE_EQ(model.ZeroStepSeconds(world, 3, layer_bytes), expected);
}

TEST(CollectiveModelTest, HardwareFabricSwitchesAtNodeBoundary) {
  const HardwareConfig hw;
  const CollectiveFabric intra = FabricFromHardware(hw, hw.gpus_per_node);
  const CollectiveFabric inter =
      FabricFromHardware(hw, hw.gpus_per_node * 2);
  EXPECT_GT(intra.bandwidth, inter.bandwidth);
  CollectiveModel intra_model(intra), inter_model(inter);
  EXPECT_LT(intra_model.AllGatherSeconds(8, 1 << 20),
            inter_model.AllGatherSeconds(8, 1 << 20));
}

}  // namespace
}  // namespace angelptm::sim
