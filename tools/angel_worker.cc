// One rank of a real multi-process ZeRO training job (DESIGN.md §14.3).
//
// N copies of this binary, each with a distinct --rank, form one training
// job over Unix-domain sockets:
//
//   for r in 0 1 2 3; do
//     ./angel_worker --rank=$r --world=4 --rendezvous=/tmp/aptm.sock &
//   done
//
// The same binary also runs the whole world in-process (--backend=inproc),
// which is how the bitwise test produces its reference: identical code,
// identical seed, different transport — the result files must match to the
// bit. Rank 0 (or the inproc run) writes --result-file as text with every
// float spelled as its raw bit pattern, so "bitwise identical" is a plain
// file comparison.
//
// Exit codes: 0 success; 42 a peer died mid-collective (the launcher
// should gang-restart the job: with --checkpoint-every set, fresh
// processes resume from the newest step every rank has on disk); 2 bad
// usage; 1 any other failure.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/allocator.h"
#include "dist/process_group.h"
#include "dist/sharded_data_parallel.h"
#include "mem/hierarchical_memory.h"
#include "train/dataset.h"
#include "train/mlp.h"
#include "util/parallel_for.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace {

using angelptm::dist::DpBackend;
using angelptm::dist::DpReport;
using angelptm::dist::ProcessGroup;
using angelptm::dist::ShardedDataParallel;
using angelptm::dist::ShardedDpOptions;
using angelptm::dist::ZeroStage;

struct WorkerArgs {
  ShardedDpOptions dp;
  int steps = 8;
  size_t hidden = 16;
  std::vector<size_t> dims = {12, 24, 16, 4};
  std::string result_file;
  int threads = 1;  // 0 = leave the compute pool alone.
};

void Usage() {
  std::fprintf(
      stderr,
      "usage: angel_worker [--backend=pg|inproc] --world=N\n"
      "  pg mode:      --rank=R --rendezvous=PATH (or ANGEL_RANK /\n"
      "                ANGEL_WORLD_SIZE / ANGEL_RENDEZVOUS)\n"
      "  job shape:    --steps=N --seed=S --batch-per-rank=N --stage=1|3\n"
      "                --dims=12,24,16,4\n"
      "  checkpoints:  --checkpoint-dir=DIR --checkpoint-every=N\n"
      "                --keep-last=N\n"
      "  output:       --result-file=PATH (rank 0 / inproc only)\n"
      "  determinism:  --threads=N compute threads (default 1; 0 = auto)\n");
}

bool ParseFlag(const std::string& arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

bool ParseArgs(int argc, char** argv, WorkerArgs* args) {
  // Environment first, flags override — matches how launchers pass rank.
  angelptm::dist::ProcessGroupOptions env;
  if (auto from_env = ProcessGroup::OptionsFromEnv(); from_env.ok()) {
    env = std::move(from_env).value();
  }
  args->dp.rank = env.rank;
  args->dp.world_size = env.world_size;
  args->dp.rendezvous = env.rendezvous;
  args->dp.backend = DpBackend::kProcessGroup;
  args->dp.batch_per_rank = 4;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "backend", &value)) {
      if (value == "pg") {
        args->dp.backend = DpBackend::kProcessGroup;
      } else if (value == "inproc") {
        args->dp.backend = DpBackend::kInProcess;
      } else {
        return false;
      }
    } else if (ParseFlag(arg, "rank", &value)) {
      args->dp.rank = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "world", &value)) {
      args->dp.world_size = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "rendezvous", &value)) {
      args->dp.rendezvous = value;
    } else if (ParseFlag(arg, "steps", &value)) {
      args->steps = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "seed", &value)) {
      args->dp.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "batch-per-rank", &value)) {
      args->dp.batch_per_rank = size_t(std::atoi(value.c_str()));
    } else if (ParseFlag(arg, "stage", &value)) {
      args->dp.stage =
          value == "1" ? ZeroStage::kStage1 : ZeroStage::kStage3;
    } else if (ParseFlag(arg, "dims", &value)) {
      args->dims.clear();
      for (size_t pos = 0; pos < value.size();) {
        const size_t comma = value.find(',', pos);
        const std::string dim = value.substr(
            pos, comma == std::string::npos ? comma : comma - pos);
        args->dims.push_back(size_t(std::atoi(dim.c_str())));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
      if (args->dims.size() < 2) return false;
    } else if (ParseFlag(arg, "checkpoint-dir", &value)) {
      args->dp.checkpoint_dir = value;
    } else if (ParseFlag(arg, "checkpoint-every", &value)) {
      args->dp.checkpoint_every_n_steps = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "keep-last", &value)) {
      args->dp.checkpoint_keep_last = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "result-file", &value)) {
      args->result_file = value;
    } else if (ParseFlag(arg, "threads", &value)) {
      args->threads = std::atoi(value.c_str());
    } else {
      std::fprintf(stderr, "angel_worker: unknown flag %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

void PrintBits(std::FILE* out, float value) {
  uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  std::fprintf(out, " %08" PRIx32, bits);
}

void PrintBits(std::FILE* out, double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  std::fprintf(out, " %016" PRIx64, bits);
}

int WriteResultFile(const WorkerArgs& args, const DpReport& report,
                    ShardedDataParallel* dp, int num_layers) {
  // The gather below is a collective in pg mode, so EVERY rank runs it;
  // only rank 0 (or the inproc run) serializes the result.
  std::vector<std::vector<float>> params{size_t(num_layers)};
  for (int l = 0; l < num_layers; ++l) {
    auto gathered = dp->GatherLayerParams(l);
    if (!gathered.ok()) {
      std::fprintf(stderr, "angel_worker: gather failed: %s\n",
                   gathered.status().ToString().c_str());
      return ProcessGroup::IsPeerLoss(gathered.status()) ? 42 : 1;
    }
    params[size_t(l)] = std::move(gathered).value();
  }
  if (args.result_file.empty() || dp->local_rank() != 0) return 0;

  std::FILE* out = std::fopen(args.result_file.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "angel_worker: cannot write %s\n",
                 args.result_file.c_str());
    return 1;
  }
  std::fprintf(out, "world %d steps %d seed %" PRIu64 " resumed %d\n",
               args.dp.world_size, args.steps, args.dp.seed,
               report.resumed_step);
  std::fprintf(out, "losses %zu", report.losses.size());
  for (double loss : report.losses) PrintBits(out, loss);
  std::fprintf(out, "\nvalidation");
  PrintBits(out, report.validation_loss);
  std::fprintf(out, "\n");
  for (int l = 0; l < num_layers; ++l) {
    std::fprintf(out, "layer %d %zu", l, params[size_t(l)].size());
    for (float p : params[size_t(l)]) PrintBits(out, p);
    std::fprintf(out, "\n");
  }
  std::fclose(out);
  return 0;
}

int Run(const WorkerArgs& args) {
  // Bitwise reproducibility across processes and backends requires a fixed
  // compute-thread count (kernel reduction order depends on it).
  std::unique_ptr<angelptm::util::ThreadPool> pinned;
  if (args.threads > 0) {
    pinned =
        std::make_unique<angelptm::util::ThreadPool>(size_t(args.threads));
    angelptm::util::SetComputePoolOverride(pinned.get());
  }

  angelptm::train::MlpConfig mlp_config;
  mlp_config.dims = args.dims;
  angelptm::train::MlpModel model(mlp_config);
  angelptm::train::SyntheticRegression dataset(
      model.in_dim(), args.hidden, model.out_dim(), args.dp.seed ^ 0x9E37ull);

  angelptm::mem::HierarchicalMemoryOptions memory_options;
  memory_options.page_bytes = 4 * 1024;
  memory_options.gpu_capacity_bytes = 64ull << 20;
  memory_options.cpu_capacity_bytes = 64ull << 20;
  angelptm::mem::HierarchicalMemory memory(memory_options);
  angelptm::core::Allocator allocator(&memory);

  ShardedDataParallel dp(&allocator, &model, args.dp);
  const angelptm::util::Status init = dp.Init();
  if (!init.ok()) {
    std::fprintf(stderr, "angel_worker: Init failed: %s\n",
                 init.ToString().c_str());
    return ProcessGroup::IsPeerLoss(init) ? 42 : 1;
  }

  auto report = dp.Train(dataset, args.steps);
  if (!report.ok()) {
    std::fprintf(stderr, "angel_worker: Train failed: %s\n",
                 report.status().ToString().c_str());
    return ProcessGroup::IsPeerLoss(report.status()) ? 42 : 1;
  }

  const int code =
      WriteResultFile(args, report.value(), &dp, model.num_layers());
  if (code != 0) return code;

  std::fprintf(stderr,
               "angel_worker: rank %d done, %d steps (resumed %d), "
               "final loss %.6g\n",
               dp.local_rank(), args.steps, report.value().resumed_step,
               report.value().final_train_loss);
  angelptm::util::SetComputePoolOverride(nullptr);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  WorkerArgs args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 2;
  }
  return Run(args);
}
