file(REMOVE_RECURSE
  "CMakeFiles/ablation_zero_stages.dir/ablation_zero_stages.cc.o"
  "CMakeFiles/ablation_zero_stages.dir/ablation_zero_stages.cc.o.d"
  "ablation_zero_stages"
  "ablation_zero_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_zero_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
