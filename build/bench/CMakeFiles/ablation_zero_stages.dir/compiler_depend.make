# Empty compiler generated dependencies file for ablation_zero_stages.
# This may be replaced when dependencies are built.
