file(REMOVE_RECURSE
  "CMakeFiles/ablation_page_packing.dir/ablation_page_packing.cc.o"
  "CMakeFiles/ablation_page_packing.dir/ablation_page_packing.cc.o.d"
  "ablation_page_packing"
  "ablation_page_packing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_page_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
