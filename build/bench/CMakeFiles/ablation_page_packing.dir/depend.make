# Empty dependencies file for ablation_page_packing.
# This may be replaced when dependencies are built.
