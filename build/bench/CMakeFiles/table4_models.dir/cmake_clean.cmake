file(REMOVE_RECURSE
  "CMakeFiles/table4_models.dir/table4_models.cc.o"
  "CMakeFiles/table4_models.dir/table4_models.cc.o.d"
  "table4_models"
  "table4_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
