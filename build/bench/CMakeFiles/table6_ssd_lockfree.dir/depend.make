# Empty dependencies file for table6_ssd_lockfree.
# This may be replaced when dependencies are built.
