file(REMOVE_RECURSE
  "CMakeFiles/table6_ssd_lockfree.dir/table6_ssd_lockfree.cc.o"
  "CMakeFiles/table6_ssd_lockfree.dir/table6_ssd_lockfree.cc.o.d"
  "table6_ssd_lockfree"
  "table6_ssd_lockfree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_ssd_lockfree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
