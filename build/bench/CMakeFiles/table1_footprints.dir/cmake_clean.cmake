file(REMOVE_RECURSE
  "CMakeFiles/table1_footprints.dir/table1_footprints.cc.o"
  "CMakeFiles/table1_footprints.dir/table1_footprints.cc.o.d"
  "table1_footprints"
  "table1_footprints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_footprints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
