# Empty compiler generated dependencies file for table1_footprints.
# This may be replaced when dependencies are built.
