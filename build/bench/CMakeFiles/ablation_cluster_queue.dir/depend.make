# Empty dependencies file for ablation_cluster_queue.
# This may be replaced when dependencies are built.
