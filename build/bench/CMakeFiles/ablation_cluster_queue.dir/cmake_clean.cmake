file(REMOVE_RECURSE
  "CMakeFiles/ablation_cluster_queue.dir/ablation_cluster_queue.cc.o"
  "CMakeFiles/ablation_cluster_queue.dir/ablation_cluster_queue.cc.o.d"
  "ablation_cluster_queue"
  "ablation_cluster_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cluster_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
