# Empty dependencies file for table2_tensor_sizes.
# This may be replaced when dependencies are built.
