# Empty compiler generated dependencies file for ablation_lockfree.
# This may be replaced when dependencies are built.
