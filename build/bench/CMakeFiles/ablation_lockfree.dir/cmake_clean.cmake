file(REMOVE_RECURSE
  "CMakeFiles/ablation_lockfree.dir/ablation_lockfree.cc.o"
  "CMakeFiles/ablation_lockfree.dir/ablation_lockfree.cc.o.d"
  "ablation_lockfree"
  "ablation_lockfree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lockfree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
