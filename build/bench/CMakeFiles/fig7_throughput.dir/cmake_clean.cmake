file(REMOVE_RECURSE
  "CMakeFiles/fig7_throughput.dir/fig7_throughput.cc.o"
  "CMakeFiles/fig7_throughput.dir/fig7_throughput.cc.o.d"
  "fig7_throughput"
  "fig7_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
