file(REMOVE_RECURSE
  "CMakeFiles/ablation_recompute.dir/ablation_recompute.cc.o"
  "CMakeFiles/ablation_recompute.dir/ablation_recompute.cc.o.d"
  "ablation_recompute"
  "ablation_recompute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_recompute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
