# Empty dependencies file for table5_model_scale.
# This may be replaced when dependencies are built.
