# Empty dependencies file for fig8_gpt175b_scaling.
# This may be replaced when dependencies are built.
