# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(util_test "/root/repo/build/tests/util_test")
set_tests_properties(util_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;9;angel_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(model_test "/root/repo/build/tests/model_test")
set_tests_properties(model_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;16;angel_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;20;angel_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(mem_test "/root/repo/build/tests/mem_test")
set_tests_properties(mem_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;28;angel_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(runtime_test "/root/repo/build/tests/runtime_test")
set_tests_properties(runtime_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;38;angel_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(train_test "/root/repo/build/tests/train_test")
set_tests_properties(train_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;45;angel_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;55;angel_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(dist_test "/root/repo/build/tests/dist_test")
set_tests_properties(dist_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;62;angel_add_test;/root/repo/tests/CMakeLists.txt;0;")
