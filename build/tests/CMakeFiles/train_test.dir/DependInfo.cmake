
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/train/engine_trainer_test.cc" "tests/CMakeFiles/train_test.dir/train/engine_trainer_test.cc.o" "gcc" "tests/CMakeFiles/train_test.dir/train/engine_trainer_test.cc.o.d"
  "/root/repo/tests/train/kernels_test.cc" "tests/CMakeFiles/train_test.dir/train/kernels_test.cc.o" "gcc" "tests/CMakeFiles/train_test.dir/train/kernels_test.cc.o.d"
  "/root/repo/tests/train/loss_scaler_test.cc" "tests/CMakeFiles/train_test.dir/train/loss_scaler_test.cc.o" "gcc" "tests/CMakeFiles/train_test.dir/train/loss_scaler_test.cc.o.d"
  "/root/repo/tests/train/mlp_test.cc" "tests/CMakeFiles/train_test.dir/train/mlp_test.cc.o" "gcc" "tests/CMakeFiles/train_test.dir/train/mlp_test.cc.o.d"
  "/root/repo/tests/train/recompute_policy_test.cc" "tests/CMakeFiles/train_test.dir/train/recompute_policy_test.cc.o" "gcc" "tests/CMakeFiles/train_test.dir/train/recompute_policy_test.cc.o.d"
  "/root/repo/tests/train/trainer_test.cc" "tests/CMakeFiles/train_test.dir/train/trainer_test.cc.o" "gcc" "tests/CMakeFiles/train_test.dir/train/trainer_test.cc.o.d"
  "/root/repo/tests/train/transformer_test.cc" "tests/CMakeFiles/train_test.dir/train/transformer_test.cc.o" "gcc" "tests/CMakeFiles/train_test.dir/train/transformer_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/angelptm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
