file(REMOVE_RECURSE
  "CMakeFiles/train_test.dir/train/engine_trainer_test.cc.o"
  "CMakeFiles/train_test.dir/train/engine_trainer_test.cc.o.d"
  "CMakeFiles/train_test.dir/train/kernels_test.cc.o"
  "CMakeFiles/train_test.dir/train/kernels_test.cc.o.d"
  "CMakeFiles/train_test.dir/train/loss_scaler_test.cc.o"
  "CMakeFiles/train_test.dir/train/loss_scaler_test.cc.o.d"
  "CMakeFiles/train_test.dir/train/mlp_test.cc.o"
  "CMakeFiles/train_test.dir/train/mlp_test.cc.o.d"
  "CMakeFiles/train_test.dir/train/recompute_policy_test.cc.o"
  "CMakeFiles/train_test.dir/train/recompute_policy_test.cc.o.d"
  "CMakeFiles/train_test.dir/train/trainer_test.cc.o"
  "CMakeFiles/train_test.dir/train/trainer_test.cc.o.d"
  "CMakeFiles/train_test.dir/train/transformer_test.cc.o"
  "CMakeFiles/train_test.dir/train/transformer_test.cc.o.d"
  "train_test"
  "train_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
