file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/adam_test.cc.o"
  "CMakeFiles/core_test.dir/core/adam_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/scheduler_property_test.cc.o"
  "CMakeFiles/core_test.dir/core/scheduler_property_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/scheduler_test.cc.o"
  "CMakeFiles/core_test.dir/core/scheduler_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/tensor_allocator_test.cc.o"
  "CMakeFiles/core_test.dir/core/tensor_allocator_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/tracer_test.cc.o"
  "CMakeFiles/core_test.dir/core/tracer_test.cc.o.d"
  "core_test"
  "core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
