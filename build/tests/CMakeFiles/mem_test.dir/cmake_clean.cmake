file(REMOVE_RECURSE
  "CMakeFiles/mem_test.dir/mem/allocator_property_test.cc.o"
  "CMakeFiles/mem_test.dir/mem/allocator_property_test.cc.o.d"
  "CMakeFiles/mem_test.dir/mem/copy_engine_test.cc.o"
  "CMakeFiles/mem_test.dir/mem/copy_engine_test.cc.o.d"
  "CMakeFiles/mem_test.dir/mem/hierarchical_memory_test.cc.o"
  "CMakeFiles/mem_test.dir/mem/hierarchical_memory_test.cc.o.d"
  "CMakeFiles/mem_test.dir/mem/page_arena_test.cc.o"
  "CMakeFiles/mem_test.dir/mem/page_arena_test.cc.o.d"
  "CMakeFiles/mem_test.dir/mem/page_test.cc.o"
  "CMakeFiles/mem_test.dir/mem/page_test.cc.o.d"
  "CMakeFiles/mem_test.dir/mem/page_transport_test.cc.o"
  "CMakeFiles/mem_test.dir/mem/page_transport_test.cc.o.d"
  "CMakeFiles/mem_test.dir/mem/ssd_tier_test.cc.o"
  "CMakeFiles/mem_test.dir/mem/ssd_tier_test.cc.o.d"
  "mem_test"
  "mem_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
