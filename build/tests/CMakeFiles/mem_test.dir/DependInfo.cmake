
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mem/allocator_property_test.cc" "tests/CMakeFiles/mem_test.dir/mem/allocator_property_test.cc.o" "gcc" "tests/CMakeFiles/mem_test.dir/mem/allocator_property_test.cc.o.d"
  "/root/repo/tests/mem/copy_engine_test.cc" "tests/CMakeFiles/mem_test.dir/mem/copy_engine_test.cc.o" "gcc" "tests/CMakeFiles/mem_test.dir/mem/copy_engine_test.cc.o.d"
  "/root/repo/tests/mem/hierarchical_memory_test.cc" "tests/CMakeFiles/mem_test.dir/mem/hierarchical_memory_test.cc.o" "gcc" "tests/CMakeFiles/mem_test.dir/mem/hierarchical_memory_test.cc.o.d"
  "/root/repo/tests/mem/page_arena_test.cc" "tests/CMakeFiles/mem_test.dir/mem/page_arena_test.cc.o" "gcc" "tests/CMakeFiles/mem_test.dir/mem/page_arena_test.cc.o.d"
  "/root/repo/tests/mem/page_test.cc" "tests/CMakeFiles/mem_test.dir/mem/page_test.cc.o" "gcc" "tests/CMakeFiles/mem_test.dir/mem/page_test.cc.o.d"
  "/root/repo/tests/mem/page_transport_test.cc" "tests/CMakeFiles/mem_test.dir/mem/page_transport_test.cc.o" "gcc" "tests/CMakeFiles/mem_test.dir/mem/page_transport_test.cc.o.d"
  "/root/repo/tests/mem/ssd_tier_test.cc" "tests/CMakeFiles/mem_test.dir/mem/ssd_tier_test.cc.o" "gcc" "tests/CMakeFiles/mem_test.dir/mem/ssd_tier_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/angelptm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
