file(REMOVE_RECURSE
  "libangelptm.a"
)
