
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/deepspeed_like.cc" "src/CMakeFiles/angelptm.dir/baselines/deepspeed_like.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/baselines/deepspeed_like.cc.o.d"
  "/root/repo/src/baselines/megatron_like.cc" "src/CMakeFiles/angelptm.dir/baselines/megatron_like.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/baselines/megatron_like.cc.o.d"
  "/root/repo/src/core/allocator.cc" "src/CMakeFiles/angelptm.dir/core/allocator.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/core/allocator.cc.o.d"
  "/root/repo/src/core/checkpoint.cc" "src/CMakeFiles/angelptm.dir/core/checkpoint.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/core/checkpoint.cc.o.d"
  "/root/repo/src/core/communicator.cc" "src/CMakeFiles/angelptm.dir/core/communicator.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/core/communicator.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/CMakeFiles/angelptm.dir/core/engine.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/core/engine.cc.o.d"
  "/root/repo/src/core/executor.cc" "src/CMakeFiles/angelptm.dir/core/executor.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/core/executor.cc.o.d"
  "/root/repo/src/core/lockfree_updater.cc" "src/CMakeFiles/angelptm.dir/core/lockfree_updater.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/core/lockfree_updater.cc.o.d"
  "/root/repo/src/core/schedule.cc" "src/CMakeFiles/angelptm.dir/core/schedule.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/core/schedule.cc.o.d"
  "/root/repo/src/core/tensor.cc" "src/CMakeFiles/angelptm.dir/core/tensor.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/core/tensor.cc.o.d"
  "/root/repo/src/core/tracer.cc" "src/CMakeFiles/angelptm.dir/core/tracer.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/core/tracer.cc.o.d"
  "/root/repo/src/core/unified_scheduler.cc" "src/CMakeFiles/angelptm.dir/core/unified_scheduler.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/core/unified_scheduler.cc.o.d"
  "/root/repo/src/dist/expert_parallel.cc" "src/CMakeFiles/angelptm.dir/dist/expert_parallel.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/dist/expert_parallel.cc.o.d"
  "/root/repo/src/dist/sharded_data_parallel.cc" "src/CMakeFiles/angelptm.dir/dist/sharded_data_parallel.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/dist/sharded_data_parallel.cc.o.d"
  "/root/repo/src/mem/copy_engine.cc" "src/CMakeFiles/angelptm.dir/mem/copy_engine.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/mem/copy_engine.cc.o.d"
  "/root/repo/src/mem/device.cc" "src/CMakeFiles/angelptm.dir/mem/device.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/mem/device.cc.o.d"
  "/root/repo/src/mem/hierarchical_memory.cc" "src/CMakeFiles/angelptm.dir/mem/hierarchical_memory.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/mem/hierarchical_memory.cc.o.d"
  "/root/repo/src/mem/memory_report.cc" "src/CMakeFiles/angelptm.dir/mem/memory_report.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/mem/memory_report.cc.o.d"
  "/root/repo/src/mem/page.cc" "src/CMakeFiles/angelptm.dir/mem/page.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/mem/page.cc.o.d"
  "/root/repo/src/mem/page_arena.cc" "src/CMakeFiles/angelptm.dir/mem/page_arena.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/mem/page_arena.cc.o.d"
  "/root/repo/src/mem/page_transport.cc" "src/CMakeFiles/angelptm.dir/mem/page_transport.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/mem/page_transport.cc.o.d"
  "/root/repo/src/mem/ssd_tier.cc" "src/CMakeFiles/angelptm.dir/mem/ssd_tier.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/mem/ssd_tier.cc.o.d"
  "/root/repo/src/model/footprint.cc" "src/CMakeFiles/angelptm.dir/model/footprint.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/model/footprint.cc.o.d"
  "/root/repo/src/model/model_zoo.cc" "src/CMakeFiles/angelptm.dir/model/model_zoo.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/model/model_zoo.cc.o.d"
  "/root/repo/src/sim/cluster_queue.cc" "src/CMakeFiles/angelptm.dir/sim/cluster_queue.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/sim/cluster_queue.cc.o.d"
  "/root/repo/src/sim/cost_model.cc" "src/CMakeFiles/angelptm.dir/sim/cost_model.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/sim/cost_model.cc.o.d"
  "/root/repo/src/sim/hardware.cc" "src/CMakeFiles/angelptm.dir/sim/hardware.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/sim/hardware.cc.o.d"
  "/root/repo/src/sim/iteration_sim.cc" "src/CMakeFiles/angelptm.dir/sim/iteration_sim.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/sim/iteration_sim.cc.o.d"
  "/root/repo/src/sim/planner.cc" "src/CMakeFiles/angelptm.dir/sim/planner.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/sim/planner.cc.o.d"
  "/root/repo/src/train/dataset.cc" "src/CMakeFiles/angelptm.dir/train/dataset.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/train/dataset.cc.o.d"
  "/root/repo/src/train/engine_trainer.cc" "src/CMakeFiles/angelptm.dir/train/engine_trainer.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/train/engine_trainer.cc.o.d"
  "/root/repo/src/train/kernels.cc" "src/CMakeFiles/angelptm.dir/train/kernels.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/train/kernels.cc.o.d"
  "/root/repo/src/train/loss_scaler.cc" "src/CMakeFiles/angelptm.dir/train/loss_scaler.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/train/loss_scaler.cc.o.d"
  "/root/repo/src/train/mlp.cc" "src/CMakeFiles/angelptm.dir/train/mlp.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/train/mlp.cc.o.d"
  "/root/repo/src/train/recompute_policy.cc" "src/CMakeFiles/angelptm.dir/train/recompute_policy.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/train/recompute_policy.cc.o.d"
  "/root/repo/src/train/trainer.cc" "src/CMakeFiles/angelptm.dir/train/trainer.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/train/trainer.cc.o.d"
  "/root/repo/src/train/transformer.cc" "src/CMakeFiles/angelptm.dir/train/transformer.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/train/transformer.cc.o.d"
  "/root/repo/src/util/bandwidth_throttle.cc" "src/CMakeFiles/angelptm.dir/util/bandwidth_throttle.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/util/bandwidth_throttle.cc.o.d"
  "/root/repo/src/util/half.cc" "src/CMakeFiles/angelptm.dir/util/half.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/util/half.cc.o.d"
  "/root/repo/src/util/histogram.cc" "src/CMakeFiles/angelptm.dir/util/histogram.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/util/histogram.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/angelptm.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/util/logging.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/angelptm.dir/util/random.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/util/random.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/angelptm.dir/util/status.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/util/status.cc.o.d"
  "/root/repo/src/util/table_printer.cc" "src/CMakeFiles/angelptm.dir/util/table_printer.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/util/table_printer.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "src/CMakeFiles/angelptm.dir/util/thread_pool.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/util/thread_pool.cc.o.d"
  "/root/repo/src/util/units.cc" "src/CMakeFiles/angelptm.dir/util/units.cc.o" "gcc" "src/CMakeFiles/angelptm.dir/util/units.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
