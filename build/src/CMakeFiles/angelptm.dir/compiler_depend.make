# Empty compiler generated dependencies file for angelptm.
# This may be replaced when dependencies are built.
