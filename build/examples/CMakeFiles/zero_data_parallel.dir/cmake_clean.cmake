file(REMOVE_RECURSE
  "CMakeFiles/zero_data_parallel.dir/zero_data_parallel.cpp.o"
  "CMakeFiles/zero_data_parallel.dir/zero_data_parallel.cpp.o.d"
  "zero_data_parallel"
  "zero_data_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zero_data_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
