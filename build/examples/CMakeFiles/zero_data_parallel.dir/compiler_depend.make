# Empty compiler generated dependencies file for zero_data_parallel.
# This may be replaced when dependencies are built.
