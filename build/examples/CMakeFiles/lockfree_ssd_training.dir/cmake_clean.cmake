file(REMOVE_RECURSE
  "CMakeFiles/lockfree_ssd_training.dir/lockfree_ssd_training.cpp.o"
  "CMakeFiles/lockfree_ssd_training.dir/lockfree_ssd_training.cpp.o.d"
  "lockfree_ssd_training"
  "lockfree_ssd_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockfree_ssd_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
