# Empty compiler generated dependencies file for lockfree_ssd_training.
# This may be replaced when dependencies are built.
