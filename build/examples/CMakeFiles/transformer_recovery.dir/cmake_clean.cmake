file(REMOVE_RECURSE
  "CMakeFiles/transformer_recovery.dir/transformer_recovery.cpp.o"
  "CMakeFiles/transformer_recovery.dir/transformer_recovery.cpp.o.d"
  "transformer_recovery"
  "transformer_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transformer_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
