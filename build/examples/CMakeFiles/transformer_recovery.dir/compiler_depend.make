# Empty compiler generated dependencies file for transformer_recovery.
# This may be replaced when dependencies are built.
