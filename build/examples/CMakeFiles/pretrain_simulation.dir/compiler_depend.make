# Empty compiler generated dependencies file for pretrain_simulation.
# This may be replaced when dependencies are built.
