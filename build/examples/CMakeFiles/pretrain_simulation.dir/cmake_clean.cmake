file(REMOVE_RECURSE
  "CMakeFiles/pretrain_simulation.dir/pretrain_simulation.cpp.o"
  "CMakeFiles/pretrain_simulation.dir/pretrain_simulation.cpp.o.d"
  "pretrain_simulation"
  "pretrain_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pretrain_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
