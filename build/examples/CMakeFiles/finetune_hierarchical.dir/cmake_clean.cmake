file(REMOVE_RECURSE
  "CMakeFiles/finetune_hierarchical.dir/finetune_hierarchical.cpp.o"
  "CMakeFiles/finetune_hierarchical.dir/finetune_hierarchical.cpp.o.d"
  "finetune_hierarchical"
  "finetune_hierarchical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finetune_hierarchical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
