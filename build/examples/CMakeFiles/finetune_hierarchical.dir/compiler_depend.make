# Empty compiler generated dependencies file for finetune_hierarchical.
# This may be replaced when dependencies are built.
