#!/bin/sh
# Per-PR check: the tier-1 verify (full build + ctest) plus a
# ThreadSanitizer configuration of the concurrency-sensitive tests, so the
# parallel kernels, ParallelFor, and the thread pool are race-checked on
# every change.
#
# Usage: scripts/check.sh [--tsan-only|--tier1-only]
set -e
cd "$(dirname "$0")/.."

MODE="${1:-all}"

if [ "$MODE" != "--tsan-only" ]; then
  echo "=== tier-1: build + full test suite ==="
  cmake -B build -S .
  cmake --build build -j
  (cd build && ctest --output-on-failure -j)
fi

if [ "$MODE" != "--tier1-only" ]; then
  echo "=== ThreadSanitizer: thread pool / ParallelFor / kernel tests ==="
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
  cmake --build build-tsan -j --target util_test train_test runtime_test
  # Deterministically exercise the parallel code paths even on small CI
  # hosts: the kernels split work as if 4 workers were present.
  ANGELPTM_COMPUTE_THREADS=4 \
    TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-tsan --output-on-failure \
      -R 'util_test|train_test|runtime_test'
fi

echo "check.sh: OK"
