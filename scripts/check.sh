#!/bin/sh
# Per-PR check: the tier-1 verify (full build + ctest) plus sanitizer and
# fault-injection configurations:
#
#   * ThreadSanitizer over the concurrency-sensitive tests (parallel
#     kernels, ParallelFor, thread pool, lock-free updater, and the obs::
#     metrics registry / span tracer hot paths).
#   * AddressSanitizer+UBSan over the memory-hierarchy and updater tests,
#     which exercise raw pread/pwrite buffers and page frame arithmetic.
#   * A fault-injection pass: the suites re-run with ANGELPTM_FAULT_SITES
#     armed, proving the env-driven failpoint path works and that transient
#     I/O faults are absorbed by the SsdTier retry policy (see DESIGN.md §7).
#   * A trace-smoke pass: a real training binary runs under ANGELPTM_TRACE
#     and the emitted Chrome trace JSON must parse (see DESIGN.md §8).
#
#   * A lint pass (DESIGN.md §10): the project linter (scripts/lint.py)
#     always runs; clang-tidy and the changed-files-only clang-format check
#     run when the tools are installed and skip with a notice otherwise
#     (the CI lint job installs them).
#
#   * A SIMD dispatch pass (DESIGN.md §11): the kernel golden tests re-run
#     with ANGELPTM_SIMD forced to each path, proving the env override is
#     honored end to end and that both code paths match train::reference::
#     on whatever host this runs on (the avx2-path tests skip themselves on
#     hosts without AVX2+FMA).
#
#   * An SSD pipeline pass (DESIGN.md §12): the pipeline bench runs in
#     smoke mode, then the mem and engine suites re-run with
#     ANGELPTM_SSD_IO_WORKERS forcing the async submission-queue backend,
#     including the fault-injection suite with a transient fault armed —
#     proving the retry policy still fires per attempt behind the queue.
#
#   * An optimizer pass (DESIGN.md §13): the golden suite for every
#     registered update rule (Adam bitwise vs the SIMD kernel, SGDM/LAMB/
#     Adafactor vs naive references, thread-count invariance), the seqlock
#     torn-read stress, the checkpoint v3 <-> v2 round-trip tests, and a
#     smoke run of the updater-contention bench across all rules.
#
#   * A dist pass (DESIGN.md §14): the socket-collective property tests,
#     shard-checkpoint suite, and the fork/exec multi-process tests (4-rank
#     bitwise match vs single-process, SIGKILL-one-rank gang restart), plus
#     an angel_worker launcher smoke at 2 and 4 real ranks whose rank-0
#     result file must match the single-process run byte for byte.
#
#   * A lockdep pass (DESIGN.md §15): the full suite rebuilt with
#     -DANGELPTM_LOCKDEP=ON (instrumented mutexes: lock-order cycles, rank
#     inversions, and same-class nesting abort the offending test), the
#     deliberate-ABBA negative tests, a lock-order graph dump (the CI
#     artifact), and a seeded schedule-perturbation sweep over the
#     updater / copy-engine / SSD / dist suites.
#
# Usage: scripts/check.sh
#   [--tier1-only|--tsan-only|--asan-only|--trace-smoke|--lint|--simd|--ssd|
#    --optimizers|--dist|--lockdep]
set -e
cd "$(dirname "$0")/.."

MODE="${1:-all}"

if [ "$MODE" = all ] || [ "$MODE" = --tier1-only ]; then
  echo "=== tier-1: build + full test suite ==="
  cmake -B build -S .
  cmake --build build -j
  (cd build && ctest --output-on-failure -j)

  echo "=== fault injection: env-driven failpoints ==="
  # The env probe proves ANGELPTM_FAULT_SITES is parsed and armed end to end.
  ANGELPTM_FAULT_SITES="check.env_probe=always" \
    ./build/tests/util_test --gtest_filter='FaultInjectorTest.EnvSpec*'
  # A transient fault on the first pwrite of every tier: the retry policy
  # must absorb it and the whole mem suite still passes.
  ANGELPTM_FAULT_SITES="ssd.pwrite=nth:1" ./build/tests/mem_test
fi

if [ "$MODE" = all ] || [ "$MODE" = --lint ]; then
  echo "=== lint: project rules (scripts/lint.py, DESIGN.md §10) ==="
  python3 scripts/lint.py

  if command -v clang-tidy > /dev/null 2>&1; then
    echo "=== lint: clang-tidy (bugprone / concurrency / performance) ==="
    # Configure (not build) is enough: it exports compile_commands.json.
    cmake -B build -S . > /dev/null
    git ls-files 'src/*.cc' 'src/*/*.cc' | \
      xargs clang-tidy -p build --quiet
  else
    echo "lint: clang-tidy not found; skipping (the CI lint job runs it)"
  fi

  if command -v clang-format > /dev/null 2>&1; then
    echo "=== lint: clang-format (changed files only) ==="
    # Diff base: origin/main in CI (CHECK_FORMAT_BASE), HEAD locally so
    # only uncommitted edits are checked.
    BASE="${CHECK_FORMAT_BASE:-HEAD}"
    CHANGED=$(git diff --name-only --diff-filter=ACMR "$BASE" -- \
      '*.h' '*.cc' || true)
    if [ -n "$CHANGED" ]; then
      echo "$CHANGED" | xargs clang-format --dry-run --Werror
    else
      echo "lint: no changed C++ files vs $BASE"
    fi
  else
    echo "lint: clang-format not found; skipping (the CI lint job runs it)"
  fi
fi

if [ "$MODE" = all ] || [ "$MODE" = --simd ]; then
  echo "=== SIMD dispatch: golden tests under both ANGELPTM_SIMD paths ==="
  if [ ! -x build/tests/train_test ]; then
    cmake -B build -S .
    cmake --build build -j --target train_test
  fi
  # The dispatch cache resolves the env var once per process, so each
  # forced path gets its own process. The golden suite is parameterized
  # over both paths internally; forcing the env on top proves the
  # env-override plumbing (not just ScopedForceIsa) selects the path.
  ANGELPTM_SIMD=scalar ./build/tests/train_test \
    --gtest_filter='*KernelGoldenTest*:SimdDispatchTest.*'
  ANGELPTM_SIMD=avx2 ./build/tests/train_test \
    --gtest_filter='*KernelGoldenTest*:SimdDispatchTest.*'
fi

if [ "$MODE" = all ] || [ "$MODE" = --ssd ]; then
  echo "=== SSD pipeline: smoke bench + suites on the async backend ==="
  if [ ! -x build/bench/ssd_pipeline_bench ] || \
     [ ! -x build/tests/mem_test ] || [ ! -x build/tests/runtime_test ]; then
    cmake -B build -S .
    cmake --build build -j --target ssd_pipeline_bench mem_test runtime_test
  fi
  # Smoke config: tiny working set, no 2x guard (the full bench enforces
  # it); this proves the read-ahead pipeline runs end to end on this host.
  ./build/bench/ssd_pipeline_bench build/BENCH_ssd_pipeline_smoke.json --smoke
  # The whole mem suite (incl. tests written against the sync default) on
  # the async backend: the env override beats every in-test io_workers
  # setting, so every ReadFrame/WriteFrame goes through the queue.
  ANGELPTM_SSD_IO_WORKERS=4 ./build/tests/mem_test
  # Fault injection against the queue: a transient fault on the first
  # pwrite of every tier must be absorbed by the per-attempt retry policy
  # even when the attempt runs on a queue worker inside a coalesced batch.
  ANGELPTM_SSD_IO_WORKERS=4 ANGELPTM_FAULT_SITES="ssd.pwrite=nth:1" \
    ./build/tests/mem_test --gtest_filter='MemFaultInjectionTest.*'
  # The engine paths (trace -> planner -> Belady eviction) on the async
  # backend, including the failed-prefetch accounting regression test.
  ANGELPTM_SSD_IO_WORKERS=4 ./build/tests/runtime_test \
    --gtest_filter='EngineTest.*'
fi

if [ "$MODE" = all ] || [ "$MODE" = --optimizers ]; then
  echo "=== optimizers: golden rules, seqlock stress, ckpt v3, bench ==="
  if [ ! -x build/tests/core_test ] || [ ! -x build/tests/util_test ] || \
     [ ! -x build/tests/runtime_test ] || \
     [ ! -x build/bench/optimizer_bench ]; then
    cmake -B build -S .
    cmake --build build -j --target core_test util_test runtime_test \
      optimizer_bench
  fi
  # Every registered rule against its reference (Adam must be bitwise
  # identical to the SIMD kernel path) plus thread-count invariance.
  ./build/tests/core_test --gtest_filter='OptimizerTest.*'
  # The seqlock torn-read stress: concurrent writers never expose a
  # mixed-generation payload to the lock-free readers.
  ./build/tests/util_test --gtest_filter='SeqLock*'
  # Checkpoint v3 (self-describing slots) round-trips, still loads v2
  # as Adam, and rejects a rule mismatch instead of mixing state.
  ./build/tests/runtime_test --gtest_filter='CheckpointTest.*'
  # Contention bench in smoke geometry: all rules must run end to end
  # with extra lock-free readers hammering the parameter mirror.
  ./build/bench/optimizer_bench build/BENCH_optimizer_smoke.json 4096
fi

if [ "$MODE" = all ] || [ "$MODE" = --dist ]; then
  echo "=== dist: multi-process ZeRO over sockets (DESIGN.md §14) ==="
  if [ ! -x build/tests/dist_test ] || [ ! -x build/tools/angel_worker ]; then
    cmake -B build -S .
    cmake --build build -j --target dist_test angel_worker
  fi
  # The full dist suite: socket-collective property tests (50+ random
  # layouts bitwise vs the in-process Communicator), shard checkpoints,
  # and the fork/exec multi-process tests (4-rank bitwise match plus the
  # SIGKILL-one-rank recovery drill).
  ./build/tests/dist_test
  # Launcher smoke: every rank is a real OS process rendezvousing over a
  # Unix-domain socket; the rank-0 result file (losses, validation loss,
  # and every parameter, all spelled as raw bit patterns) must match the
  # single-process run byte for byte.
  for WORLD in 2 4; do
    DIST_DIR=$(mktemp -d "${TMPDIR:-/tmp}/aptm-dist-XXXXXX")
    ./build/tools/angel_worker --backend=inproc --world="$WORLD" \
      --steps=6 --result-file="$DIST_DIR/inproc.txt"
    R=1
    while [ "$R" -lt "$WORLD" ]; do
      ./build/tools/angel_worker --backend=pg --rank="$R" \
        --world="$WORLD" --rendezvous="$DIST_DIR/rdv.sock" --steps=6 &
      R=$((R + 1))
    done
    ./build/tools/angel_worker --backend=pg --rank=0 --world="$WORLD" \
      --rendezvous="$DIST_DIR/rdv.sock" --steps=6 \
      --result-file="$DIST_DIR/pg.txt"
    wait
    cmp "$DIST_DIR/inproc.txt" "$DIST_DIR/pg.txt"
    echo "dist: world=$WORLD matches single-process bitwise"
    rm -rf "$DIST_DIR"
  done
fi

if [ "$MODE" = all ] || [ "$MODE" = --trace-smoke ]; then
  echo "=== trace smoke: ANGELPTM_TRACE produces loadable JSON ==="
  if [ ! -x build/examples/quickstart ]; then
    cmake -B build -S .
    cmake --build build -j --target quickstart
  fi
  TRACE_OUT="build/trace_smoke.json"
  rm -f "$TRACE_OUT"
  ANGELPTM_TRACE="$TRACE_OUT" ./build/examples/quickstart > /dev/null
  test -s "$TRACE_OUT"
  if command -v python3 > /dev/null 2>&1; then
    python3 -m json.tool "$TRACE_OUT" > /dev/null
    echo "trace smoke: $TRACE_OUT is valid JSON"
  else
    # No python on the host: fall back to the structural grep the golden
    # test also performs.
    grep -q '"traceEvents":\[' "$TRACE_OUT"
    grep -q '"dropped_spans":' "$TRACE_OUT"
    echo "trace smoke: $TRACE_OUT has the trace_event envelope"
  fi
fi

if [ "$MODE" = all ] || [ "$MODE" = --tsan-only ]; then
  echo "=== ThreadSanitizer: thread pool / ParallelFor / kernel tests ==="
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
  cmake --build build-tsan -j --target util_test obs_test train_test \
    runtime_test
  # Deterministically exercise the parallel code paths even on small CI
  # hosts: the kernels split work as if 4 workers were present.
  ANGELPTM_COMPUTE_THREADS=4 \
    TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-tsan --output-on-failure \
      -R 'util_test|obs_test|train_test|runtime_test'
  # The crash/restart suite once more, explicitly: CheckpointManager::Save
  # quiesces a *running* lock-free updater layer by layer, and the recovery
  # loop tears threads down mid-error — any lock the snapshot path misses
  # surfaces here (see DESIGN.md §9).
  TSAN_OPTIONS="halt_on_error=1" \
    ./build-tsan/tests/train_test --gtest_filter='RecoveryTest.*'
  TSAN_OPTIONS="halt_on_error=1" \
    ./build-tsan/tests/runtime_test \
      --gtest_filter='CheckpointTest.*:CheckpointManagerTest.*'
fi

if [ "$MODE" = all ] || [ "$MODE" = --asan-only ]; then
  echo "=== Address/UBSanitizer: memory hierarchy / updater tests ==="
  # Beyond plain `undefined`: float division by zero (not UB in IEEE754,
  # but almost always a bug in optimizer math) and explicit array-bounds
  # checks. `implicit-integer-sign-change` exists only in Clang's UBSan,
  # so probe the compiler rather than hard-coding it.
  SAN_CHECKS="address,undefined,float-divide-by-zero,bounds"
  if ${CXX:-c++} --version 2>/dev/null | grep -qi clang; then
    SAN_CHECKS="$SAN_CHECKS,implicit-integer-sign-change"
  fi
  cmake -B build-asan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=$SAN_CHECKS -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=$SAN_CHECKS"
  cmake --build build-asan -j --target util_test mem_test runtime_test
  ASAN_OPTIONS="detect_leaks=1" \
    UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1:suppressions=$(pwd)/scripts/ubsan.supp" \
    ctest --test-dir build-asan --output-on-failure \
      -R 'util_test|mem_test|runtime_test'
fi

if [ "$MODE" = all ] || [ "$MODE" = --lockdep ]; then
  echo "=== lockdep: lock-order analysis + perturbation (DESIGN.md §15) ==="
  cmake -B build-lockdep -S . -DANGELPTM_LOCKDEP=ON
  cmake --build build-lockdep -j
  # Full suite under the instrumented mutexes: any lock-order cycle, rank
  # inversion, recursive or same-class nesting aborts the offending test.
  (cd build-lockdep && ctest --output-on-failure)
  # Negative leg, explicitly: the deliberate-ABBA tests must *detect* the
  # inversion (both stacks in the report) rather than deadlock.
  ./build-lockdep/tests/util_test --gtest_filter='Lockdep*'
  # Graph artifact: re-run a lock-heavy suite with the atexit dump armed;
  # CI uploads build-lockdep/lock_order.{dot,json}.
  ANGELPTM_LOCKDEP_DUMP=build-lockdep/lock_order \
    ./build-lockdep/tests/runtime_test --gtest_filter='LockFreeUpdater*'
  test -s build-lockdep/lock_order.dot
  test -s build-lockdep/lock_order.json
  echo "lockdep: graph dumped to build-lockdep/lock_order.{dot,json}"
  # Schedule-perturbation sweep: seeded yield/sleep injection at every
  # instrumented lock acquire and failpoint, over the concurrency-core
  # suites. Each seed is an independent, reproducible schedule; a failure
  # replays with the printed seed.
  for SEED in 1 2 3; do
    echo "--- perturbation sweep: ANGELPTM_PERTURB_SEED=$SEED ---"
    ANGELPTM_PERTURB_SEED=$SEED ANGELPTM_PERTURB_PROB=0.05 \
      ./build-lockdep/tests/runtime_test \
        --gtest_filter='LockFreeUpdater*:EngineTest.*'
    ANGELPTM_PERTURB_SEED=$SEED ANGELPTM_PERTURB_PROB=0.05 \
      ./build-lockdep/tests/mem_test \
        --gtest_filter='CopyEngineTest.*:SsdTierTest.*'
    ANGELPTM_PERTURB_SEED=$SEED ANGELPTM_PERTURB_PROB=0.05 \
      ./build-lockdep/tests/dist_test \
        --gtest_filter='ProcessGroupTest.*:ShardedDpTest.*'
  done
fi

echo "check.sh: OK"
