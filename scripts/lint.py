#!/usr/bin/env python3
"""Project lint for angelptm (DESIGN.md §10, §15).

Eight rules over src/ (tests and benches are exempt unless noted):

  mutex       Every mutex-like member must participate in the thread-safety
              contract: raw std::mutex / std::condition_variable declarations
              need a `// lint: unguarded` waiver (use util::Mutex/util::CondVar
              from util/thread_annotations.h instead), and every util::Mutex
              member must be referenced by at least one ANGEL_GUARDED_BY /
              ANGEL_PT_GUARDED_BY / ANGEL_REQUIRES / ANGEL_ACQUIRE /
              ANGEL_EXCLUDES in the same file (or carry the waiver).

  nodiscard   Every declaration returning util::Status or util::Result<...>
              must be [[nodiscard]]. (src/util/status.h itself is exempt:
              the types are declared [[nodiscard]] at class level there.)

  failpoint   Every fault-injection site named in src/ (ANGEL_FAULT_CHECK("x")
              or FaultInjector...Check("x")) must appear in the canonical
              failpoint table of DESIGN.md §10, and vice versa — the table
              and the code cannot drift apart.

  naked-new   No naked `new`: allocations must land in a smart pointer on the
              same statement, or carry a `// lint: naked-new (<reason>)`
              waiver (leaked singletons are the only expected use).

  simd-include  `#include <immintrin.h>` (and the other x86 intrinsic
              headers) may appear only under src/train/simd/, so vector
              intrinsics cannot spread outside the dispatch layer and its
              one -mavx2 TU. Waive with `// lint: simd-include (<reason>)`.

  optimizer-registry  Every concrete `class X final : public Optimizer`
              must call RegisterOptimizer(...) in the same file, so a new
              update rule cannot be added without becoming reachable through
              Optimizer::Create. Waive with
              `// lint: optimizer-registry (<reason>)` on the class line.

  raw-mutex   Outside src/util/, any use of std::mutex / std::lock_guard /
              std::unique_lock / std::scoped_lock / std::condition_variable
              is banned (declarations AND lock sites): everything must go
              through the util:: shims so lockdep coverage is total. Waive
              with `// lint: raw-mutex (<reason>)`.

  lock-class  Every util::Mutex in src/ must declare a lock class and rank
              (`util::Mutex mu{"x.y", lockrank::kXY};`, DESIGN.md §15), and
              the declared (class, rank constant) pairs must agree with the
              canonical lock-class table in DESIGN.md §15 and with the rank
              constants in src/util/lockdep.h — in both directions, like
              the failpoint rule. Waive a classless mutex with
              `// lint: lock-class (<reason>)`.

Exit code 0 when clean, 1 with one finding per line otherwise.

Usage: scripts/lint.py [--root DIR] [--design FILE] [--src DIR]
"""

import argparse
import os
import re
import sys

MUTEX_WAIVER = "// lint: unguarded"
RAW_MUTEX_WAIVER = "// lint: raw-mutex"
LOCK_CLASS_WAIVER = "// lint: lock-class"
NEW_WAIVER = "// lint: naked-new"
SIMD_WAIVER = "// lint: simd-include"
REGISTRY_WAIVER = "// lint: optimizer-registry"

# Concrete optimizer implementations: `class X final : public Optimizer`
# (optionally namespace-qualified). The abstract base itself has no base
# clause and never matches.
OPTIMIZER_SUBCLASS_RE = re.compile(
    r"class\s+(\w+)\s+final\s*:\s*public\s+(?:\w+::)*Optimizer\b")
REGISTER_CALL_RE = re.compile(r"\bRegisterOptimizer\s*\(")

# x86 vector-intrinsic headers (immintrin.h is the umbrella; the rest are
# its pieces that someone might include directly).
SIMD_INCLUDE_RE = re.compile(
    r'#\s*include\s*[<"]'
    r"(?:immintrin|x86intrin|xmmintrin|emmintrin|pmmintrin|tmmintrin|"
    r"smmintrin|nmmintrin|wmmintrin|avxintrin|avx2intrin)\.h"
    r'[>"]')
SIMD_ALLOWED_DIR = os.path.join("src", "train", "simd")

RAW_MUTEX_RE = re.compile(
    r"\bstd::(mutex|shared_mutex|recursive_mutex|condition_variable(_any)?)\b"
)
UTIL_MUTEX_MEMBER_RE = re.compile(
    r"\b(?:util::)?Mutex\s+(\w+)\s*(?:;|\{|ANGEL_GUARDED_BY)"
)
# Any std:: locking vocabulary (types and RAII lock sites) — banned outside
# src/util/ by the raw-mutex rule.
RAW_LOCK_TOKEN_RE = re.compile(
    r"\bstd::(?:mutex|shared_mutex|recursive_mutex|"
    r"condition_variable(?:_any)?|lock_guard|unique_lock|scoped_lock)\b"
)
# A util::Mutex declared with a lock class and rank:
#   util::Mutex mu{"class.name", lockrank::kConst};
# (possibly spanning lines; matched against whole-file text), and the
# make_shared spelling used for dynamically created mutexes.
MUTEX_CLASS_DECL_RE = re.compile(
    r'\bMutex\s+\w+\s*\{\s*"([\w.]+)"\s*,\s*'
    r"(?:util::)?lockrank::(k\w+)")
MUTEX_SHARED_CLASS_RE = re.compile(
    r'make_shared<\s*util::Mutex\s*>\s*\(\s*"([\w.]+)"\s*,\s*'
    r"(?:util::)?lockrank::(k\w+)")
# A classless util::Mutex declaration (member or make_shared) — needs a
# class or the lock-class waiver.
MUTEX_NO_CLASS_RE = re.compile(r"\b(?:util::)?Mutex\s+(\w+)\s*;")
MUTEX_SHARED_NO_CLASS_RE = re.compile(
    r"make_shared<\s*util::Mutex\s*>\s*\(\s*\)")
# Rank constants in src/util/lockdep.h.
LOCKRANK_CONST_RE = re.compile(r"inline constexpr int (k\w+) = (\d+);")
# Rows of the §15 lock-class table: | `class` | `kConst` | rank | where |
LOCKCLASS_ROW_RE = re.compile(
    r"^\|\s*`([\w.]+)`\s*\|\s*`(k\w+)`\s*\|\s*(\d+)\s*\|")
LOCKCLASS_HEADING_RE = re.compile(r"^#+\s.*lock-class table", re.IGNORECASE)
ANNOTATION_REF_RE = re.compile(
    r"ANGEL_(?:PT_)?(?:GUARDED_BY|REQUIRES|ACQUIRE|RELEASE|TRY_ACQUIRE|"
    r"EXCLUDES|RETURN_CAPABILITY)\s*\(([^)]*)\)"
)
STATUS_DECL_RE = re.compile(
    r"^\s*(?:\[\[nodiscard\]\]\s+)?(?:static\s+|virtual\s+)*"
    r"util::(?:Status|Result<[^;=]*?>)\s+\w+\s*\("
)
FAULT_SITE_RE = re.compile(
    r'(?:ANGEL_FAULT_CHECK|\bCheck)\s*\(\s*"([^"]+)"')
NEW_RE = re.compile(r"(?<![:\w])new\s+[A-Za-z_:][\w:<>, \[\]]*")
SMART_WRAP_RE = re.compile(
    r"std::(unique_ptr|shared_ptr)\s*<|\breset\s*\(\s*new\b")
LOCK_USE_RE = re.compile(
    r"std::(?:lock_guard|unique_lock|scoped_lock)\s*<[^>]*>")
# Rows of the §10 table: | `site.name` | where | meaning |
TABLE_ROW_RE = re.compile(r"^\|\s*`([\w.]+)`\s*\|")
# The heading that introduces the canonical failpoint table; only rows
# between it and the next heading count as failpoint sites (other tables in
# the doc, e.g. the lint-rule table, must not be parsed as sites).
FAILPOINT_HEADING_RE = re.compile(r"^#+\s.*failpoint table", re.IGNORECASE)


def strip_comments_and_strings(line):
    """Removes // comments and the contents of string literals (keeps "")."""
    out = []
    i = 0
    in_str = False
    while i < len(line):
        c = line[i]
        if in_str:
            if c == "\\":
                i += 2
                continue
            if c == '"':
                in_str = False
                out.append(c)
            i += 1
            continue
        if c == '"':
            in_str = True
            out.append(c)
            i += 1
            continue
        if line.startswith("//", i):
            break
        out.append(c)
        i += 1
    return "".join(out)


def iter_source_files(src_dir, suffixes=(".h", ".cc")):
    for root, _dirs, files in os.walk(src_dir):
        for name in sorted(files):
            if name.endswith(suffixes):
                yield os.path.join(root, name)


def lint_file(path, findings, src_dir=None):
    with open(path, encoding="utf-8") as f:
        lines = f.readlines()
    in_util = False
    if src_dir is not None:
        rel = os.path.relpath(os.path.normpath(path), os.path.normpath(src_dir))
        in_util = rel.split(os.sep)[0] == "util"
    text = "".join(lines)
    # Comment/string-stripped view for rules where a mention in a comment
    # must not count (e.g. the optimizer-registry factory call).
    stripped_text = "\n".join(strip_comments_and_strings(l) for l in lines)
    annotated = set()
    for m in ANNOTATION_REF_RE.finditer(text):
        for arg in m.group(1).split(","):
            arg = arg.strip()
            if arg:
                annotated.add(arg.lstrip("*&"))

    basename = os.path.basename(path)
    for lineno, raw in enumerate(lines, start=1):
        code = strip_comments_and_strings(raw)

        # Rule: mutex. Locking a (waivered) raw mutex with std::lock_guard
        # etc. is fine — the rule targets the declaration, not its uses.
        decl_code = LOCK_USE_RE.sub("", code)
        if RAW_MUTEX_RE.search(decl_code) and "#include" not in code:
            if MUTEX_WAIVER not in raw and RAW_MUTEX_WAIVER not in raw:
                findings.append(
                    f"{path}:{lineno}: [mutex] raw std:: mutex/condvar; use "
                    f"util::Mutex/util::CondVar (util/thread_annotations.h) "
                    f"or waive with `{MUTEX_WAIVER}`")
        m = UTIL_MUTEX_MEMBER_RE.search(code)
        if m and ";" in code:
            name = m.group(1)
            if name not in annotated and MUTEX_WAIVER not in raw:
                findings.append(
                    f"{path}:{lineno}: [mutex] util::Mutex member `{name}` "
                    f"is never referenced by ANGEL_GUARDED_BY/ANGEL_REQUIRES/"
                    f"ANGEL_EXCLUDES in this file; annotate what it guards "
                    f"or waive with `{MUTEX_WAIVER}`")

        # Rule: raw-mutex. Outside src/util/ the std:: locking vocabulary
        # is banned outright — declarations and lock sites both — so every
        # lock the process takes goes through the instrumented shims and is
        # visible to lockdep (DESIGN.md §15).
        if (not in_util and "#include" not in code
                and RAW_LOCK_TOKEN_RE.search(code)
                and RAW_MUTEX_WAIVER not in raw):
            findings.append(
                f"{path}:{lineno}: [raw-mutex] std:: locking primitive "
                f"outside src/util/; use util::Mutex/util::MutexLock/"
                f"util::CondVar so lockdep sees it, or waive with "
                f"`{RAW_MUTEX_WAIVER} (<reason>)`")

        # Rule: lock-class (declaration side). A util::Mutex with no lock
        # class is invisible to the lock-order graph.
        if ((MUTEX_NO_CLASS_RE.search(code)
             or MUTEX_SHARED_NO_CLASS_RE.search(code))
                and LOCK_CLASS_WAIVER not in raw):
            findings.append(
                f"{path}:{lineno}: [lock-class] util::Mutex without a lock "
                f'class; declare one (`util::Mutex mu{{"x.y", '
                f"lockrank::kXY}};`, DESIGN.md §15) or waive with "
                f"`{LOCK_CLASS_WAIVER} (<reason>)`")

        # Rule: nodiscard (headers only; status.h is nodiscard at class
        # level; definitions in .cc repeat the declaration without it).
        if (path.endswith(".h") and basename != "status.h"
                and STATUS_DECL_RE.match(code)
                and "[[nodiscard]]" not in code):
            prev = lines[lineno - 2] if lineno >= 2 else ""
            if "[[nodiscard]]" not in prev:
                findings.append(
                    f"{path}:{lineno}: [nodiscard] declaration returning "
                    f"util::Status/util::Result lacks [[nodiscard]]")

        # Rule: simd-include. Matched against the raw line (the include
        # itself is what we are looking for, and the waiver rides in a
        # trailing comment).
        if (SIMD_INCLUDE_RE.search(raw)
                and SIMD_ALLOWED_DIR not in os.path.normpath(path)
                and SIMD_WAIVER not in raw):
            findings.append(
                f"{path}:{lineno}: [simd-include] x86 intrinsic header "
                f"outside {SIMD_ALLOWED_DIR}/; move the vector code into "
                f"the simd layer or waive with `{SIMD_WAIVER} (<reason>)`")

        # Rule: naked-new.
        if NEW_RE.search(code):
            if (not SMART_WRAP_RE.search(code)
                    and NEW_WAIVER not in raw):
                findings.append(
                    f"{path}:{lineno}: [naked-new] `new` outside a smart "
                    f"pointer; wrap it or waive with "
                    f"`{NEW_WAIVER} (<reason>)`")

        # Rule: optimizer-registry. The factory call may live anywhere in
        # the same file (the builtin rules register via a hook function).
        m = OPTIMIZER_SUBCLASS_RE.search(code)
        if (m and REGISTRY_WAIVER not in raw
                and not REGISTER_CALL_RE.search(stripped_text)):
            findings.append(
                f"{path}:{lineno}: [optimizer-registry] `{m.group(1)}` "
                f"subclasses Optimizer but this file never calls "
                f"RegisterOptimizer(...); register it with a factory or "
                f"waive with `{REGISTRY_WAIVER} (<reason>)`")


def collect_fault_sites(src_dir):
    sites = {}
    for path in iter_source_files(src_dir):
        with open(path, encoding="utf-8") as f:
            for lineno, raw in enumerate(f, start=1):
                if "#define" in raw:
                    continue
                comment = raw.find("//")
                for m in FAULT_SITE_RE.finditer(raw):
                    if comment != -1 and m.start() > comment:
                        continue  # Doc comments mention sites by example.
                    sites.setdefault(m.group(1), f"{path}:{lineno}")
    return sites


def collect_design_sites(design_path):
    sites = set()
    in_section = False
    with open(design_path, encoding="utf-8") as f:
        for line in f:
            if FAILPOINT_HEADING_RE.match(line):
                in_section = True
                continue
            if in_section and line.startswith("#"):
                break  # Next heading ends the failpoint table's section.
            if not in_section:
                continue
            m = TABLE_ROW_RE.match(line.strip())
            if m and m.group(1) not in ("site", "---"):
                sites.add(m.group(1))
    return sites


def lint_failpoints(src_dir, design_path, findings):
    code_sites = collect_fault_sites(src_dir)
    doc_sites = collect_design_sites(design_path)
    for site, where in sorted(code_sites.items()):
        if site not in doc_sites:
            findings.append(
                f"{where}: [failpoint] site `{site}` is not listed in the "
                f"failpoint table of {os.path.basename(design_path)} §10")
    for site in sorted(doc_sites - set(code_sites)):
        findings.append(
            f"{design_path}: [failpoint] table lists `{site}` but no such "
            f"ANGEL_FAULT_CHECK/Check site exists in {src_dir}")


def _match_is_in_comment(text, start):
    line_start = text.rfind("\n", 0, start) + 1
    return "//" in text[line_start:start]


def collect_lock_classes(src_dir):
    """Maps lock-class name -> (rank constant, first declaration site).

    Matches whole-file text so two-line declarations (class string on one
    line, rank constant on the next) are still seen. Also returns any
    conflicting redeclarations (same class, different rank constant).
    """
    classes = {}
    conflicts = []
    for path in iter_source_files(src_dir):
        with open(path, encoding="utf-8") as f:
            text = f.read()
        for regex in (MUTEX_CLASS_DECL_RE, MUTEX_SHARED_CLASS_RE):
            for m in regex.finditer(text):
                if _match_is_in_comment(text, m.start()):
                    continue  # Doc comments show declarations by example.
                name, const = m.group(1), m.group(2)
                lineno = text.count("\n", 0, m.start()) + 1
                where = f"{path}:{lineno}"
                if name in classes and classes[name][0] != const:
                    conflicts.append((where, name, const, classes[name]))
                classes.setdefault(name, (const, where))
    return classes, conflicts


def collect_lockrank_constants(lockdep_path):
    consts = {}
    with open(lockdep_path, encoding="utf-8") as f:
        for line in f:
            m = LOCKRANK_CONST_RE.search(line)
            if m:
                consts[m.group(1)] = int(m.group(2))
    return consts


def collect_design_lock_classes(design_path):
    """Rows of the §15 lock-class table: class -> (constant, rank)."""
    rows = {}
    in_section = False
    with open(design_path, encoding="utf-8") as f:
        for line in f:
            if LOCKCLASS_HEADING_RE.match(line):
                in_section = True
                continue
            if in_section and line.startswith("#"):
                break  # Next heading ends the table's section.
            if not in_section:
                continue
            m = LOCKCLASS_ROW_RE.match(line.strip())
            if m:
                rows[m.group(1)] = (m.group(2), int(m.group(3)))
    return rows


def lint_lock_classes(src_dir, design_path, findings):
    """Cross-checks code <-> lockdep.h <-> DESIGN table, both directions."""
    classes, conflicts = collect_lock_classes(src_dir)
    for where, name, const, first in conflicts:
        findings.append(
            f"{where}: [lock-class] class `{name}` declared with rank "
            f"`{const}` but {first[1]} uses `{first[0]}`; one class must "
            f"have exactly one rank")
    doc = collect_design_lock_classes(design_path)
    design_name = os.path.basename(design_path)
    lockdep_h = os.path.join(src_dir, "util", "lockdep.h")
    consts = (collect_lockrank_constants(lockdep_h)
              if os.path.exists(lockdep_h) else None)

    for name, (const, where) in sorted(classes.items()):
        if consts is not None and const not in consts:
            findings.append(
                f"{where}: [lock-class] rank constant `{const}` is not "
                f"defined in {lockdep_h}")
        if name not in doc:
            findings.append(
                f"{where}: [lock-class] class `{name}` is not listed in the "
                f"lock-class table of {design_name} §15")
        elif doc[name][0] != const:
            findings.append(
                f"{where}: [lock-class] class `{name}` is declared with "
                f"`{const}` but the {design_name} table says "
                f"`{doc[name][0]}`")
    for name, (const, rank) in sorted(doc.items()):
        if name not in classes:
            findings.append(
                f"{design_path}: [lock-class] table lists `{name}` but no "
                f"util::Mutex in {src_dir} declares that class")
        if consts is not None:
            if const not in consts:
                findings.append(
                    f"{design_path}: [lock-class] table references `{const}` "
                    f"which is not defined in {lockdep_h}")
            elif consts[const] != rank:
                findings.append(
                    f"{design_path}: [lock-class] table says `{name}` = "
                    f"`{const}` = {rank} but {lockdep_h} defines "
                    f"{const} = {consts[const]}")


def run(src_dir, design_path):
    findings = []
    for path in iter_source_files(src_dir):
        lint_file(path, findings, src_dir)
    if os.path.exists(design_path):
        lint_failpoints(src_dir, design_path, findings)
        lint_lock_classes(src_dir, design_path, findings)
    else:
        findings.append(f"{design_path}: [failpoint] design doc not found")
    return findings


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--src", default=None,
                        help="source dir to lint (default: <root>/src)")
    parser.add_argument("--design", default=None,
                        help="design doc with the failpoint table "
                             "(default: <root>/DESIGN.md)")
    args = parser.parse_args()
    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    src_dir = args.src or os.path.join(root, "src")
    design = args.design or os.path.join(root, "DESIGN.md")

    findings = run(src_dir, design)
    for finding in findings:
        print(finding)
    if findings:
        print(f"lint.py: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint.py: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
